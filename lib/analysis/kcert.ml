(* Kernel switch-path certifier: `tpsim certify --kernel`.

   {!Certify} proves leakage bounds for guest [Ct_ir] programs; this
   module proves them for the kernel's own domain-switch sequence —
   the mechanism the paper contributes, and until now the only part of
   the system that was measured rather than certified.

   The approach lifts [Tp_kernel.Domain_switch.switch] into an
   analysable access trace ({!lift}): the paper-ordered 12 steps, each
   with the exact shared-region / image accesses the implementation
   performs, at the exact virtual addresses [Tp_kernel.Layout] assigns
   them.  Abstract interpretation is then set-wise must-coverage, the
   dual of CacheAudit's may/must domains: the switch path's
   {e deterministic} accesses (marked [a_must]) pin ways to public
   content — touching [k] distinct lines of a [w]-way set leaves at
   most [w - min k w] ways whose state can still depend on the
   outgoing domain's secrets.  The certified residue of a channel is
   its structural capacity minus that coverage, or 0 when the
   configuration closes the channel outright (flush or spatial
   partition).

   Soundness notes, per channel:

   - accesses whose address varies across switches (the destination
     thread's priority slot, the destination TCB at a user-chosen
     physical frame) are marked [a_must = false] and contribute {e no}
     coverage — under-approximating coverage over-approximates residue;
   - virtual-indexed structures (both L1s, the TLBs) take coverage
     from virtual addresses, which the layout fixes; physically-indexed
     outer caches and the branch predictor get {e zero} coverage
     because image physical placement and branch-target hashing are
     allocation-dependent;
   - the x86 manual L1 flush appears in the trace as its real
     flush-buffer sweep (one read per L1-D line, one fetch per L1-I
     line), so its full-coverage effect is {e derived}, not asserted;
   - aliasing between kernel images (all mapped at the same virtual
     base) dedups to single virtual lines, which matches the
     virtually-indexed structures the coverage feeds.

   Cross-validation is {!Certify.exhaustive3}: observational
   determinism across secrets under all three-domain schedules of the
   shrunken machine — the transitive victim→neighbour→attacker relay a
   two-domain enumeration cannot exhibit.  A 0-bit kernel certificate
   contradicted by a 3-domain counterexample is a certifier bug and
   fails CI ([CERT-K-XCHECK-EXHAUSTIVE]); a certificate exceeding the
   [Tp_hw.Bounds]-derived analytic worst case trips the linter's
   unsoundness canary ([TP-KCERT-UNSOUND]).

   Certificates serialise to deterministic, content-digested JSON
   artifacts ({!to_json} / {!digest}); CI regenerates them and
   byte-diffs against the checked-in goldens under [certs/kernel/]. *)

module C = Tp_kernel.Config
module P = Tp_hw.Platform
module L = Tp_kernel.Layout

let schema = "tpsim-kcert/1"

(* ------------------------------------------------------------------ *)
(* Rule identifiers                                                    *)

let rule_l1d_residue = "CERT-K-L1D-RESIDUE"
let rule_l1i_residue = "CERT-K-L1I-RESIDUE"
let rule_tlb_residue = "CERT-K-TLB-RESIDUE"
let rule_btb_residue = "CERT-K-BTB-RESIDUE"
let rule_llc_residue = "CERT-K-LLC-RESIDUE"
let rule_pad_timing = "CERT-K-PAD-TIMING"
let rule_xcheck = "CERT-K-XCHECK-EXHAUSTIVE"

let channel_rule = function
  | Certify.L1d -> rule_l1d_residue
  | Certify.L1i -> rule_l1i_residue
  | Certify.Tlb -> rule_tlb_residue
  | Certify.Bp -> rule_btb_residue
  | Certify.Llc -> rule_llc_residue

(* ------------------------------------------------------------------ *)
(* The lifted switch trace                                             *)

type access = {
  a_what : string;
  a_vaddr : int;
  a_bytes : int;
  a_kind : Tp_hw.Defs.access_kind;
  a_must : bool;
      (** address identical on every switch: counts toward coverage *)
}

type step = {
  s_index : int;
  s_name : string;
  s_accesses : access list;
  s_flushes : string list;
}

let acc ?(must = true) what vaddr bytes kind =
  { a_what = what; a_vaddr = vaddr; a_bytes = bytes; a_kind = kind; a_must = must }

(* The 12 paper-ordered steps of [Domain_switch.switch], lifted for a
   domain-crossing switch under [cfg].  For a domain crossing,
   [protect = kernel_switched || not clone_kernel] is true in every
   configuration (with cloned kernels the crossing switches kernels;
   without, the fallback triggers), so the protection steps 3/7 are
   unconditional here; the stack copy (step 4) runs exactly when
   kernels are cloned. *)
let lift (p : P.t) (cfg : C.t) =
  let shared r = L.shared_vaddr + L.shared_region_off r in
  let ssize = L.shared_region_size in
  let base = L.kernel_base_vaddr in
  let lay = L.image_layout p in
  let r = Tp_hw.Defs.Read and w = Tp_hw.Defs.Write and f = Tp_hw.Defs.Fetch in
  let step i name ?(flushes = []) accesses =
    { s_index = i; s_name = name; s_accesses = accesses; s_flushes = flushes }
  in
  let manual_l1 =
    cfg.flush_l1 && (not cfg.flush_llc) && not p.P.has_l1_flush_instr
  in
  let flush_names =
    (if cfg.flush_llc then [ "l1-hw"; "l2-private"; "llc" ]
     else if cfg.flush_l1 then
       (if manual_l1 then [ "l1-manual" ] else [ "l1-hw" ])
       @ (if cfg.flush_l2 then [ "l2-private" ] else [])
     else [])
    @ (if cfg.flush_tlb then [ "tlb" ] else [])
    @ (if cfg.flush_bp then [ "bp" ] else [])
    @ if cfg.close_dram_rows then [ "dram-close" ] else []
  in
  (* The manual flush's buffer sweep is real memory traffic at fixed
     per-image virtual addresses: one load per L1-D line, one fetched
     jump per L1-I line ([Domain_switch.manual_l1_flush]). *)
  let manual_accesses =
    if not manual_l1 then []
    else
      [
        acc "flushbuf-d-sweep" (base + lay.L.flushbuf_off) p.P.l1d.Tp_hw.Cache.size r;
        acc "flushbuf-i-sweep"
          (base + lay.L.flushbuf_off + p.P.l1d.Tp_hw.Cache.size)
          p.P.l1i.Tp_hw.Cache.size f;
      ]
  in
  let live_stack = min 1024 lay.L.stack_size in
  [
    step 1 "acquire-kernel-lock" [ acc "big-lock" (shared L.Big_lock) 8 w ];
    step 2 "process-tick"
      [
        acc "tick-handler-text"
          (base + L.handler_tick.L.t_off)
          L.handler_tick.L.t_len f;
        acc "cur-irq" (shared L.Cur_irq) 8 w;
        (* Destination priority chooses the slot: address varies. *)
        acc ~must:false "sched-queue-slot" (shared L.Sched_queues) 16 r;
        acc "sched-bitmap" (shared L.Sched_bitmap) (ssize L.Sched_bitmap) r;
        acc "cur-decision" (shared L.Cur_decision) 8 w;
      ];
    step 3 "mask-irqs" [ acc "irq-tables" (shared L.Irq_tables) 256 w ];
    step 4 "stack-copy"
      (if cfg.clone_kernel then
         (* Both images map their stacks at the same virtual offset —
            the virtual lines alias, exactly as in the L1. *)
         [
           acc "from-stack" (base + lay.L.stack_off) live_stack r;
           acc "to-stack" (base + lay.L.stack_off) live_stack w;
         ]
       else []);
    step 5 "thread-context"
      [
        acc ~must:false "sched-queue-slot" (shared L.Sched_queues) 16 w;
        (* The destination TCB lives at a user-allocated physical
           frame: no fixed address, no coverage. *)
        acc ~must:false "dest-tcb" 0 (4 * p.P.line) r;
        acc "cur-pointers" (shared L.Cur_pointers) (ssize L.Cur_pointers) w;
      ];
    step 6 "release-kernel-lock" [ acc "big-lock" (shared L.Big_lock) 8 w ];
    step 7 "unmask-irqs" [ acc "irq-tables" (shared L.Irq_tables) 256 w ];
    step 8 "flush" ~flushes:flush_names manual_accesses;
    step 9 "prefetch-shared"
      (if cfg.prefetch_shared then
         List.map
           (fun reg ->
             acc
               (Printf.sprintf "shared-%d" (L.shared_region_off reg))
               (shared reg) (ssize reg) r)
           L.all_shared_regions
       else []);
    step 10 "pad" [];
    step 11 "timer-reprogram" [ acc "irq-tables" (shared L.Irq_tables) 64 w ];
    step 12 "return" [];
  ]

(* ------------------------------------------------------------------ *)
(* Set-wise must-coverage                                              *)

let distinct_per_bucket pairs =
  (* [(bucket, id)] pairs -> bucket -> distinct-id count, as a sorted
     association list (determinism of the fold does not matter for the
     sums below, but sorted output keeps debugging sane). *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (b, id) ->
      let ids = Option.value (Hashtbl.find_opt tbl b) ~default:[] in
      if not (List.mem id ids) then Hashtbl.replace tbl b (id :: ids))
    pairs;
  Hashtbl.fold (fun b ids l -> (b, List.length ids) :: l) tbl []
  |> List.sort compare

let covered_cache (g : Tp_hw.Cache.geometry) accs =
  let sets = Tp_hw.Cache.sets g in
  let pairs =
    List.concat_map
      (fun a ->
        let first = a.a_vaddr / g.line
        and last = (a.a_vaddr + a.a_bytes - 1) / g.line in
        List.init (last - first + 1) (fun i ->
            let l = first + i in
            (l mod sets, l)))
      accs
  in
  List.fold_left
    (fun t (_, k) -> t + min k g.ways)
    0
    (distinct_per_bucket pairs)

let covered_tlb (t : Tp_hw.Tlb.geometry) pages =
  let sets = max 1 (t.entries / t.ways) in
  let pairs = List.map (fun vpn -> (vpn mod sets, vpn)) pages in
  List.fold_left
    (fun tot (_, k) -> tot + min k t.ways)
    0
    (distinct_per_bucket pairs)

let pages_of accs =
  List.concat_map
    (fun a ->
      let first = a.a_vaddr / Tp_hw.Defs.page_size
      and last = (a.a_vaddr + a.a_bytes - 1) / Tp_hw.Defs.page_size in
      List.init (last - first + 1) (fun i -> first + i))
    accs

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

type bound = {
  kb_channel : Certify.channel;
  kb_raw : int;  (** structural capacity: bits with no protection *)
  kb_covered : int;  (** ways pinned to public content by the trace *)
  kb_bits : int;  (** certified per-switch bound *)
  kb_scrubbed : bool;
  kb_note : string;
}

type cert = {
  k_platform : string;
  k_config_name : string;
  k_config : C.t;
  k_steps : step list;
  k_bounds : bound list;
  k_timing_bits : int;
  k_pad_bound : int;
  k_pad_effective : int;
  k_exhaustive : Certify.exhaustive_result option;
  k_exclusions : string list;
}

let state_bits c = List.fold_left (fun a b -> a + b.kb_bits) 0 c.k_bounds
let total_bits c = state_bits c + c.k_timing_bits

let cache_lines (g : Tp_hw.Cache.geometry) = Tp_hw.Cache.sets g * g.ways

let certify ?exhaustive (p : P.t) ~config_name (cfg : C.t) =
  let steps = lift p cfg in
  let accs = List.concat_map (fun s -> s.s_accesses) steps in
  let must = List.filter (fun a -> a.a_must) accs in
  let data =
    List.filter (fun a -> a.a_kind <> Tp_hw.Defs.Fetch) must
  in
  let fetch = List.filter (fun a -> a.a_kind = Tp_hw.Defs.Fetch) must in
  (* Config-level partition claim; whether the booted allocation
     honours it is the linter's job (the TP-COLOUR and TP-CLONE
     rules), and the 3-domain exhaustive check exercises the coloured
     placement. *)
  let partitioned = cfg.colour_user && cfg.clone_kernel in
  let l1_closed = cfg.flush_l1 || cfg.flush_llc in
  let l2_closed =
    cfg.flush_llc || (cfg.flush_l1 && cfg.flush_l2) || partitioned
  in
  let llc_closed = cfg.flush_llc || partitioned || cfg.cat_llc in
  let cap_l2 = match p.P.l2 with Some g -> cache_lines g | None -> 0 in
  let mk ch raw covered closed note =
    let covered = min covered raw in
    {
      kb_channel = ch;
      kb_raw = raw;
      kb_covered = covered;
      kb_bits = (if closed then 0 else raw - covered);
      kb_scrubbed = closed;
      kb_note = note;
    }
  in
  let flush_note flag = Printf.sprintf "scrubbed on every switch (%s)" flag in
  let cover_note what =
    Printf.sprintf
      "open: residue after the switch path's deterministic %s coverage" what
  in
  let bounds =
    [
      mk Certify.L1d (cache_lines p.P.l1d)
        (covered_cache p.P.l1d data)
        l1_closed
        (if l1_closed then flush_note "flush_l1" else cover_note "data-line");
      mk Certify.L1i (cache_lines p.P.l1i)
        (covered_cache p.P.l1i fetch)
        l1_closed
        (if l1_closed then flush_note "flush_l1"
         else cover_note "instruction-line");
      (let dpages = pages_of data and fpages = pages_of fetch in
       mk Certify.Tlb
         (p.P.itlb.entries + p.P.dtlb.entries + p.P.l2tlb.entries)
         (covered_tlb p.P.dtlb dpages
         + covered_tlb p.P.itlb fpages
         + covered_tlb p.P.l2tlb (dpages @ fpages))
         cfg.flush_tlb
         (if cfg.flush_tlb then flush_note "flush_tlb"
          else cover_note "translation"));
      mk Certify.Bp
        (p.P.btb.entries + p.P.bhb.pht_entries)
        0 cfg.flush_bp
        (if cfg.flush_bp then flush_note "flush_bp"
         else
           "open: branch-target hashing is not derivable from the \
            layout, so the trace covers nothing");
      (let raw = cap_l2 + cache_lines p.P.llc in
       let bits =
         (if l2_closed then 0 else cap_l2)
         + if llc_closed then 0 else cache_lines p.P.llc
       in
       let note =
         if cfg.flush_llc then flush_note "flush_llc"
         else if partitioned then
           "partitioned by page colour (coloured userland + cloned kernel)"
         else if llc_closed && not l2_closed then
           "CAT masks partition the LLC ways but leave the private L2 open"
         else if bits = 0 then "flushed/partitioned at every level"
         else
           "open: physically-indexed, image placement is \
            allocation-dependent — zero coverage"
       in
       {
         kb_channel = Certify.Llc;
         kb_raw = raw;
         kb_covered = 0;
         kb_bits = bits;
         kb_scrubbed = (bits = 0);
         kb_note = note;
       });
    ]
  in
  let pad_bound = Lint.pad_bound p cfg in
  let timing_bits =
    if cfg.pad_cycles < pad_bound then
      Certify.ceil_log2 (pad_bound - cfg.pad_cycles + 1)
    else 0
  in
  {
    k_platform = p.P.name;
    k_config_name = config_name;
    k_config = cfg;
    k_steps = steps;
    k_bounds = bounds;
    k_timing_bits = timing_bits;
    k_pad_bound = pad_bound;
    k_pad_effective = cfg.pad_cycles;
    k_exhaustive = exhaustive;
    k_exclusions = Certify.exclusions;
  }

(* ------------------------------------------------------------------ *)
(* Soundness canary                                                    *)

let analytic_worst_bits (p : P.t) (cfg : C.t) =
  let cap_l2 = match p.P.l2 with Some g -> cache_lines g | None -> 0 in
  cache_lines p.P.l1d + cache_lines p.P.l1i
  + (p.P.itlb.entries + p.P.dtlb.entries + p.P.l2tlb.entries)
  + (p.P.btb.entries + p.P.bhb.pht_entries)
  + cap_l2 + cache_lines p.P.llc
  + Certify.ceil_log2 (Lint.pad_bound p cfg + 1)

let check_sound (p : P.t) (c : cert) =
  let bad =
    List.filter_map
      (fun b ->
        if b.kb_bits > b.kb_raw then
          Some
            (Printf.sprintf "%s: certified %d bits > structural capacity %d"
               (Certify.channel_name b.kb_channel)
               b.kb_bits b.kb_raw)
        else None)
      c.k_bounds
  in
  let bad =
    if c.k_timing_bits > Certify.ceil_log2 (c.k_pad_bound + 1) then
      Printf.sprintf "timing: certified %d bits > pad-bound capacity %d"
        c.k_timing_bits
        (Certify.ceil_log2 (c.k_pad_bound + 1))
      :: bad
    else bad
  in
  let worst = analytic_worst_bits p c.k_config in
  let bad =
    if total_bits c > worst then
      Printf.sprintf
        "total: certified %d bits > Bounds-derived analytic worst case %d"
        (total_bits c) worst
      :: bad
    else bad
  in
  List.map
    (fun msg ->
      Diag.error ~rule:Lint.rule_kcert_unsound
        ~context:
          [ ("platform", c.k_platform); ("config", c.k_config_name) ]
        (Printf.sprintf
           "kernel certificate for %s/%s exceeds its analytic envelope — \
            the certifier is unsound: %s"
           c.k_platform c.k_config_name msg))
    bad

let lint_crosscheck (p : P.t) ~config_name (cfg : C.t) =
  check_sound p (certify p ~config_name cfg)

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let subject c = Printf.sprintf "certify-kernel %s %s" c.k_platform c.k_config_name

let report (c : cert) =
  let findings =
    List.filter_map
      (fun b ->
        if b.kb_bits = 0 then None
        else
          Some
            (Diag.error ~rule:(channel_rule b.kb_channel)
               ~context:
                 [
                   ("bits", string_of_int b.kb_bits);
                   ("raw_bits", string_of_int b.kb_raw);
                   ("covered", string_of_int b.kb_covered);
                   ("note", b.kb_note);
                 ]
               (Printf.sprintf
                  "%s channel not closed across the kernel switch: certified \
                   bound %d bits (%s)"
                  (Certify.channel_name b.kb_channel)
                  b.kb_bits b.kb_note)))
      c.k_bounds
  in
  let findings =
    if c.k_timing_bits = 0 then findings
    else
      findings
      @ [
          Diag.error ~rule:rule_pad_timing
            ~context:
              [
                ("bits", string_of_int c.k_timing_bits);
                ("pad_effective", string_of_int c.k_pad_effective);
                ("pad_bound", string_of_int c.k_pad_bound);
              ]
            (Printf.sprintf
               "kernel switch underpadded: configured pad %d < worst-case %d \
                \xe2\x87\x92 up to %d timing bits per switch"
               c.k_pad_effective c.k_pad_bound c.k_timing_bits);
        ]
  in
  let findings =
    match c.k_exhaustive with
    | Some r when total_bits c = 0 && r.Certify.ex_counterexample <> None ->
        findings
        @ [
            Diag.error ~rule:rule_xcheck
              (Printf.sprintf
                 "kernel certificate claims 0 bits but the %d-domain \
                  small-scope check found a distinguishing schedule (%s) on %s"
                 r.Certify.ex_domains
                 (match r.Certify.ex_counterexample with
                 | Some cx -> cx.Certify.cx_schedule
                 | None -> "?")
                 r.Certify.ex_platform);
          ]
    | _ -> findings
  in
  { Diag.subject = subject c; findings }

let pp ppf (c : cert) =
  Format.fprintf ppf
    "%s: certified per-switch leakage bound %d bits (%s)@." (subject c)
    (total_bits c)
    (if total_bits c = 0 then "tight: noninterference" else "residue");
  List.iter
    (fun b ->
      Format.fprintf ppf "  %-16s %5d bits (raw %5d, covered %4d)  %s@."
        (Certify.channel_name b.kb_channel)
        b.kb_bits b.kb_raw b.kb_covered b.kb_note)
    c.k_bounds;
  Format.fprintf ppf "  %-16s %5d bits (pad %d vs bound %d)@." "timing"
    c.k_timing_bits c.k_pad_effective c.k_pad_bound;
  (match c.k_exhaustive with
  | None -> ()
  | Some r ->
      Format.fprintf ppf
        "  exhaustive: %d domains, %d schedules x %d secrets on %s: %s@."
        r.Certify.ex_domains r.Certify.ex_schedules
        (List.length r.Certify.ex_secrets)
        r.Certify.ex_platform
        (match r.Certify.ex_counterexample with
        | None -> "pass"
        | Some cx -> "COUNTEREXAMPLE " ^ cx.Certify.cx_schedule));
  Format.fprintf ppf "  steps: %d (lifted from Domain_switch.switch)@."
    (List.length c.k_steps)

(* ------------------------------------------------------------------ *)
(* Deterministic artifact JSON + digest                                *)

let kind_name = function
  | Tp_hw.Defs.Read -> "R"
  | Tp_hw.Defs.Write -> "W"
  | Tp_hw.Defs.Fetch -> "F"

let access_json a =
  Printf.sprintf
    "{\"what\":\"%s\",\"vaddr\":\"0x%x\",\"bytes\":%d,\"kind\":\"%s\",\"must\":%b}"
    (Diag.json_escape a.a_what) a.a_vaddr a.a_bytes (kind_name a.a_kind)
    a.a_must

let step_json s =
  Printf.sprintf "{\"index\":%d,\"name\":\"%s\",\"flushes\":[%s],\"accesses\":[%s]}"
    s.s_index
    (Diag.json_escape s.s_name)
    (String.concat ","
       (List.map (fun fl -> "\"" ^ Diag.json_escape fl ^ "\"") s.s_flushes))
    (String.concat "," (List.map access_json s.s_accesses))

let bound_json b =
  Printf.sprintf
    "{\"channel\":\"%s\",\"bits\":%d,\"raw_bits\":%d,\"covered\":%d,\"scrubbed\":%b,\"note\":\"%s\"}"
    (Diag.json_escape (Certify.channel_name b.kb_channel))
    b.kb_bits b.kb_raw b.kb_covered b.kb_scrubbed
    (Diag.json_escape b.kb_note)

let config_json (cfg : C.t) =
  Printf.sprintf
    "{\"colour_user\":%b,\"clone_kernel\":%b,\"flush_l1\":%b,\"flush_tlb\":%b,\"flush_bp\":%b,\"flush_l2\":%b,\"flush_llc\":%b,\"disable_prefetcher\":%b,\"pad_cycles\":%d,\"partition_irqs\":%b,\"prefetch_shared\":%b,\"close_dram_rows\":%b,\"cat_llc\":%b}"
    cfg.colour_user cfg.clone_kernel cfg.flush_l1 cfg.flush_tlb cfg.flush_bp
    cfg.flush_l2 cfg.flush_llc cfg.disable_prefetcher cfg.pad_cycles
    cfg.partition_irqs cfg.prefetch_shared cfg.close_dram_rows cfg.cat_llc

(* The digested core: everything except the exhaustive block, so that
   a consumer that cannot afford the model check (the campaign daemon
   records a digest per trial) still computes the identical digest. *)
let core_json (c : cert) =
  Printf.sprintf
    "{\"schema\":\"%s\",\"platform\":\"%s\",\"config_name\":\"%s\",\"config\":%s,\"certified_bits\":%d,\"state_bits\":%d,\"timing_bits\":%d,\"pad_effective\":%d,\"pad_bound\":%d,\"channels\":[%s],\"steps\":[%s],\"exclusions\":[%s]}"
    (Diag.json_escape schema)
    (Diag.json_escape c.k_platform)
    (Diag.json_escape c.k_config_name)
    (config_json c.k_config) (total_bits c) (state_bits c) c.k_timing_bits
    c.k_pad_effective c.k_pad_bound
    (String.concat "," (List.map bound_json c.k_bounds))
    (String.concat "," (List.map step_json c.k_steps))
    (String.concat ","
       (List.map (fun e -> "\"" ^ Diag.json_escape e ^ "\"") c.k_exclusions))

let digest c = Digest.to_hex (Digest.string (core_json c))

let to_json (c : cert) =
  let core = core_json c in
  let body = String.sub core 0 (String.length core - 1) in
  Printf.sprintf "%s,%s\"digest\":\"%s\"}" body
    (match c.k_exhaustive with
    | None -> ""
    | Some r ->
        Printf.sprintf "\"exhaustive\":%s," (Certify.exhaustive_to_json r))
    (digest c)

let artifact_name c = Printf.sprintf "%s-%s.cert.json" c.k_platform c.k_config_name
