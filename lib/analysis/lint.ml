open Tp_kernel

let rule_colour_overlap = "TP-COLOUR-OVERLAP"
let rule_colour_off = "TP-COLOUR-OFF"
let rule_cat_overlap = "TP-CAT-OVERLAP"
let rule_clone_missing = "TP-CLONE-MISSING"
let rule_clone_colour = "TP-CLONE-COLOUR"
let rule_kernel_shared = "TP-KERNEL-SHARED"
let rule_irq_shared = "TP-IRQ-SHARED"
let rule_irq_off = "TP-IRQ-OFF"
let rule_pad_insufficient = "TP-PAD-INSUFFICIENT"
let rule_pad_profile = "TP-PAD-PROFILE"
let rule_audit_nondet = "TP-AUDIT-NONDET"

(* Fired by the kernel-path certifier's soundness canary (Kcert lives
   above Lint, so only the identifier is declared here): a certified
   kernel-switch bound that exceeds the Bounds-derived analytic worst
   case means the certifier, not the kernel, is broken. *)
let rule_kcert_unsound = "TP-KCERT-UNSOUND"

(* ------------------------------------------------------------------ *)
(* Analytic pad bound                                                  *)

let pad_bound_breakdown p (cfg : Config.t) =
  let coloured = cfg.Config.colour_user in
  let footprint_bytes =
    List.fold_left (fun acc (_, b) -> acc + b) 0 (Layout.switch_footprint p)
  in
  let sweep bytes = Tp_hw.Bounds.sweep_cycles ~coloured p ~bytes () in
  let flushes =
    if cfg.Config.flush_llc then
      [
        ("flush-l1", Tp_hw.Bounds.l1_flush_hw_bound p);
        ("flush-l2", Tp_hw.Bounds.l2_flush_bound p);
        ("flush-llc", Tp_hw.Bounds.llc_flush_bound p);
      ]
    else if cfg.Config.flush_l1 then
      ("flush-l1", Tp_hw.Bounds.l1_flush_bound ~coloured p)
      :: (if cfg.Config.flush_l2 then [ ("flush-l2", Tp_hw.Bounds.l2_flush_bound p) ]
          else [])
    else []
  in
  [ ("fixed-overhead", Domain_switch.fixed_overhead_cycles);
    ("switch-footprint", sweep footprint_bytes) ]
  @ flushes
  @ (if cfg.Config.flush_tlb then [ ("flush-tlb", Tp_hw.Bounds.tlb_flush_bound p) ] else [])
  @ (if cfg.Config.flush_bp then [ ("flush-bp", Tp_hw.Bounds.bp_flush_bound p) ] else [])
  @ (if cfg.Config.close_dram_rows then
       [ ("dram-close", Domain_switch.dram_close_cost) ]
     else [])
  @
  if cfg.Config.prefetch_shared then
    [ ("prefetch-shared", sweep Layout.shared_bytes) ]
  else []

let pad_bound p cfg =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (pad_bound_breakdown p cfg)

(* ------------------------------------------------------------------ *)
(* Analytic lifecycle bounds (clone / destroy)                         *)

(* Worst-case Clone.clone cost: a cold sweep of every footprint
   component (the copy loop's read and write sides dominate).  The
   coloured flag matters: a coloured pool restricts the copy to the
   domain's colours, which costs extra DRAM row misses exactly as the
   switch-footprint sweep does. *)
(* Dirty-victim write-backs a footprint's demand sweeps can trigger —
   the sweeps themselves only charge the lines they bring in. *)
let eviction_component p footprint =
  let line = p.Tp_hw.Platform.line in
  let lines =
    List.fold_left (fun acc (_, bytes) -> acc + ((bytes + line - 1) / line)) 0
      footprint
  in
  ("dirty-evictions", Tp_hw.Bounds.eviction_wb_bound p ~lines)

let clone_bound_breakdown p (cfg : Config.t) =
  let coloured = cfg.Config.colour_user in
  List.map
    (fun (name, bytes) -> (name, Tp_hw.Bounds.sweep_cycles ~coloured p ~bytes ()))
    (Layout.clone_footprint p)
  @ [ eviction_component p (Layout.clone_footprint p) ]

let clone_bound p cfg =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (clone_bound_breakdown p cfg)

(* Worst-case Clone.destroy cost: cold sweeps of the teardown footprint
   plus the fixed costs the sweeps cannot see — the IPI round-trip
   stall per remote core, every core's TLB shootdown, and the registry
   bookkeeping ({!Tp_hw.Bounds}). *)
let destroy_bound_breakdown p (cfg : Config.t) =
  let coloured = cfg.Config.colour_user in
  List.map
    (fun (name, bytes) -> (name, Tp_hw.Bounds.sweep_cycles ~coloured p ~bytes ()))
    (Layout.destroy_footprint p)
  @ [
      eviction_component p (Layout.destroy_footprint p);
      ("ipi-stall", p.Tp_hw.Platform.cores * 2 * Tp_hw.Bounds.ipi_cost);
      ("tlb-shootdown", p.Tp_hw.Platform.cores * Tp_hw.Bounds.tlb_flush_bound p);
      ("bookkeeping", Tp_hw.Bounds.destroy_bookkeeping_cost);
    ]

let destroy_bound p cfg =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (destroy_bound_breakdown p cfg)

(* ------------------------------------------------------------------ *)
(* Views                                                               *)

type kernel_view = {
  kv_id : int;
  kv_initial : bool;
  kv_active : bool;
  kv_frames : int list;
  kv_pad : int;
}

type domain_view = {
  dv_id : int;
  dv_colours : Colour.set;
  dv_kernel : int;
  dv_cat_mask : int option;
  dv_thread_kernels : (int * int) list;
}

type view = {
  v_platform : Tp_hw.Platform.t;
  v_config : Config.t;
  v_n_colours : int;
  v_initial_kernel : int;
  v_kernels : kernel_view list;
  v_domains : domain_view list;
  v_irq_routes : (int * int) list;
  v_pad : int;
}

let view_of_booted (b : Boot.booted) =
  let sys = b.Boot.sys in
  let cfg = System.cfg sys in
  let initial = (System.initial_kernel sys).Types.ki_id in
  let kernels =
    List.map
      (fun ki ->
        {
          kv_id = ki.Types.ki_id;
          kv_initial = ki.Types.ki_is_initial;
          kv_active = ki.Types.ki_state = Types.Ki_active;
          kv_frames = Array.to_list ki.Types.ki_frames;
          kv_pad = ki.Types.ki_pad_cycles;
        })
      (System.kernels sys)
  in
  let masks = System.cat_masks sys in
  let domains =
    Array.to_list b.Boot.domains
    |> List.map (fun d ->
           {
             dv_id = d.Boot.dom_id;
             dv_colours = d.Boot.dom_colours;
             dv_kernel = d.Boot.dom_kernel.Types.ki_id;
             dv_cat_mask =
               Option.bind masks (fun a ->
                   if d.Boot.dom_id >= 0 && d.Boot.dom_id < Array.length a then
                     Some a.(d.Boot.dom_id)
                   else None);
             dv_thread_kernels =
               List.map
                 (fun t ->
                   ( t.Types.t_id,
                     match t.Types.t_kernel with
                     | Some k -> k.Types.ki_id
                     | None -> initial ))
                 d.Boot.dom_threads;
           })
  in
  (* Routing from both sides of the bookkeeping: the controller's
     handler table and each image's ki_irqs list.  A disagreement
     shows up as one IRQ with two kernels. *)
  let routes =
    List.map (fun (irq, ki) -> (irq, ki.Types.ki_id)) (Irq.routes (System.irq sys))
    @ List.concat_map
        (fun ki -> List.map (fun irq -> (irq, ki.Types.ki_id)) ki.Types.ki_irqs)
        (System.kernels sys)
  in
  {
    v_platform = System.platform sys;
    v_config = cfg;
    v_n_colours = System.n_colours sys;
    v_initial_kernel = initial;
    v_kernels = kernels;
    v_domains = domains;
    v_irq_routes = List.sort_uniq compare routes;
    v_pad = cfg.Config.pad_cycles;
  }

(* ------------------------------------------------------------------ *)
(* The pure pass                                                       *)

let pairs l =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go l

let lint_view v =
  let cfg = v.v_config in
  let p = v.v_platform in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let ndoms = List.length v.v_domains in
  let kernel id = List.find_opt (fun k -> k.kv_id = id) v.v_kernels in
  (* Spatial cache partitioning: user colours. *)
  if cfg.Config.colour_user then
    List.iter
      (fun (a, b) ->
        let both = Colour.inter a.dv_colours b.dv_colours in
        if both <> Colour.empty then
          add
            (Diag.error ~rule:rule_colour_overlap
               ~context:
                 [ ("colours", Format.asprintf "%a" Colour.pp both) ]
               (Printf.sprintf
                  "domains %d and %d share page colours %s: their data can \
                   collide in every physically-indexed cache"
                  a.dv_id b.dv_id
                  (String.concat "," (List.map string_of_int (Colour.to_list both))))))
      (pairs v.v_domains)
  else if (not cfg.Config.cat_llc) && ndoms >= 2 then
    add
      (Diag.error ~rule:rule_colour_off
         "no spatial LLC partitioning (page colouring and CAT both off): \
          concurrent cross-core cache attacks remain possible whatever is \
          flushed on the switch");
  (* CAT way masks. *)
  if cfg.Config.cat_llc then begin
    List.iter
      (fun (a, b) ->
        match (a.dv_cat_mask, b.dv_cat_mask) with
        | Some ma, Some mb when ma land mb <> 0 ->
            add
              (Diag.error ~rule:rule_cat_overlap
                 (Printf.sprintf
                    "domains %d and %d have overlapping CAT way masks \
                     (%#x and %#x)"
                    a.dv_id b.dv_id ma mb))
        | _ -> ())
      (pairs v.v_domains);
    List.iter
      (fun d ->
        if d.dv_cat_mask = None then
          add
            (Diag.error ~rule:rule_cat_overlap
               (Printf.sprintf "domain %d has no CAT way mask installed" d.dv_id)))
      v.v_domains
  end;
  (* Kernel clone coverage. *)
  if cfg.Config.clone_kernel then begin
    List.iter
      (fun d ->
        if d.dv_kernel = v.v_initial_kernel then
          add
            (Diag.error ~rule:rule_clone_missing
               (Printf.sprintf
                  "domain %d runs on the initial (boot) kernel image instead \
                   of a private clone"
                  d.dv_id));
        List.iter
          (fun (tid, kid) ->
            if kid <> d.dv_kernel then
              add
                (Diag.error ~rule:rule_clone_missing
                   (Printf.sprintf
                      "thread %d of domain %d is bound to kernel image %d, \
                       not the domain's image %d"
                      tid d.dv_id kid d.dv_kernel)))
          d.dv_thread_kernels)
      v.v_domains;
    List.iter
      (fun (a, b) ->
        if a.dv_kernel = b.dv_kernel then
          add
            (Diag.error ~rule:rule_clone_missing
               (Printf.sprintf "domains %d and %d share kernel image %d"
                  a.dv_id b.dv_id a.dv_kernel)))
      (pairs v.v_domains);
    (* Private images must be complete and built from the domain's own
       colours; skip domains already reported as clone-missing. *)
    let shared_kernel d =
      d.dv_kernel = v.v_initial_kernel
      || List.exists (fun o -> o.dv_id <> d.dv_id && o.dv_kernel = d.dv_kernel)
           v.v_domains
    in
    List.iter
      (fun d ->
        if not (shared_kernel d) then
          match kernel d.dv_kernel with
          | None ->
              add
                (Diag.error ~rule:rule_clone_missing
                   (Printf.sprintf
                      "domain %d's kernel image %d is not registered with the \
                       system"
                      d.dv_id d.dv_kernel))
          | Some k ->
              let expect = Layout.image_frames p in
              if List.length k.kv_frames <> expect then
                add
                  (Diag.error ~rule:rule_clone_colour
                     (Printf.sprintf
                        "kernel image %d of domain %d has %d frames, expected \
                         %d: clone coverage is incomplete"
                        k.kv_id d.dv_id (List.length k.kv_frames) expect));
              if cfg.Config.colour_user then begin
                let nc = v.v_n_colours in
                let stray =
                  List.filter
                    (fun f ->
                      not
                        (Colour.mem d.dv_colours
                           (Colour.colour_of_frame ~n_colours:nc f)))
                    k.kv_frames
                in
                if stray <> [] then
                  add
                    (Diag.error ~rule:rule_clone_colour
                       (Printf.sprintf
                          "kernel image %d of domain %d has %d frame(s) \
                           outside the domain's colours (first: frame %d)"
                          k.kv_id d.dv_id (List.length stray) (List.hd stray)))
              end)
      v.v_domains
  end
  else if
    ndoms >= 2
    && not (cfg.Config.flush_l1 && cfg.Config.flush_tlb && cfg.Config.flush_bp)
  then
    add
      (Diag.error ~rule:rule_kernel_shared
       @@ "all domains share one kernel image and on-core flushing is not \
           configured: kernel text/data footprints carry cross-domain \
           channels (Fig. 3)");
  (* IRQ partitioning. *)
  let by_irq = Hashtbl.create 8 in
  List.iter
    (fun (irq, kid) ->
      let cur = Option.value (Hashtbl.find_opt by_irq irq) ~default:[] in
      if not (List.mem kid cur) then Hashtbl.replace by_irq irq (kid :: cur))
    v.v_irq_routes;
  Hashtbl.iter
    (fun irq kids ->
      if List.length kids > 1 then
        add
          (Diag.error ~rule:rule_irq_shared
             (Printf.sprintf
                "IRQ %d is deliverable to %d kernel images (%s): interrupt \
                 delivery crosses the partition boundary"
                irq (List.length kids)
                (String.concat "," (List.map string_of_int (List.rev kids)))));
      if irq = Irq.preemption_irq then
        add
          (Diag.error ~rule:rule_irq_shared
             "the preemption timer IRQ is routed to a kernel image; it must \
              stay under exclusive kernel control");
      List.iter
        (fun kid ->
          match kernel kid with
          | Some k when k.kv_active -> ()
          | _ ->
              add
                (Diag.error ~rule:rule_irq_shared
                   (Printf.sprintf
                      "IRQ %d is routed to inactive/unknown kernel image %d"
                      irq kid)))
        kids)
    by_irq;
  if (not cfg.Config.partition_irqs) && ndoms >= 2 then
    add
      (Diag.error ~rule:rule_irq_off
         "IRQ partitioning is off with multiple domains: a partition's \
          devices can interrupt another partition's slices (the §5.3.5 \
          interrupt channel)");
  (* Pad sufficiency. *)
  if ndoms >= 2 then begin
    let bound = pad_bound p cfg in
    let pads =
      v.v_pad
      :: List.filter_map
           (fun d -> Option.map (fun k -> k.kv_pad) (kernel d.dv_kernel))
           v.v_domains
    in
    let eff = List.fold_left min max_int pads in
    if eff < bound then
      add
        (Diag.error ~rule:rule_pad_insufficient
           ~context:
             (("pad_cycles", string_of_int eff)
             :: ("bound_cycles", string_of_int bound)
             :: List.map
                  (fun (k, c) -> (k, string_of_int c))
                  (pad_bound_breakdown p cfg))
           (Printf.sprintf
              "switch pad of %d cycles is below the analytic worst-case \
               switch cost of %d cycles: switch latency remains \
               state-dependent"
              eff bound))
  end;
  List.rev !fs

let default_subject b =
  Printf.sprintf "lint %s" (System.platform b.Boot.sys).Tp_hw.Platform.name

let check_static ?subject b =
  let subject = Option.value subject ~default:(default_subject b) in
  { Diag.subject; findings = lint_view (view_of_booted b) }

(* ------------------------------------------------------------------ *)
(* Padprof cross-check                                                 *)

let profile_findings p cfg =
  let bound = pad_bound p cfg in
  Tp_obs.Padprof.images ()
  |> List.filter_map (fun im ->
         if im.Tp_obs.Padprof.im_worst_unpadded > bound then
           Some
             (Diag.warning ~rule:rule_pad_profile
                (Printf.sprintf
                   "kernel image %d: observed unpadded switch cost %d exceeds \
                    the analytic bound %d — the bound no longer covers \
                    observed behaviour"
                   im.Tp_obs.Padprof.im_ki im.Tp_obs.Padprof.im_worst_unpadded
                   bound))
         else None)

(* ------------------------------------------------------------------ *)
(* Dynamic §4.1 audit: the shared-data trace of a switch must be the
   same whatever the outgoing domain did with the machine.             *)

let audit_findings (b : Boot.booted) =
  let sys = b.Boot.sys in
  if Array.length b.Boot.domains < 2 then []
  else begin
    let p = System.platform sys in
    let line = p.Tp_hw.Platform.line in
    let page = Tp_hw.Defs.page_size in
    let d0 = b.Boot.domains.(0) and d1 = b.Boot.domains.(1) in
    let t0 = Boot.spawn b d0 (fun _ -> ()) in
    let t1 = Boot.spawn b d1 (fun _ -> ()) in
    Sched.remove (System.sched sys) ~core:0 t0;
    Sched.remove (System.sched sys) ~core:0 t1;
    let bytes = p.Tp_hw.Platform.l1d.Tp_hw.Cache.size in
    let buf = Boot.alloc_pages b d0 ~pages:(max 1 (bytes / page)) in
    let slice = Tp_hw.Platform.us_to_cycles p 10_000.0 in
    let variant dirty =
      ignore (Domain_switch.switch sys ~core:0 ~to_:t0);
      let ctx =
        Uctx.make sys ~core:0 t0 ~slice_end:(System.now sys ~core:0 + slice)
      in
      (try
         if dirty then
           for i = 0 to (bytes / line) - 1 do
             Uctx.write ctx (buf + (i * line))
           done
       with Uctx.Preempted -> ());
      Audit.capture sys (fun () ->
          ignore (Domain_switch.switch sys ~core:0 ~to_:t1))
    in
    let quiet = variant false in
    let noisy = variant true in
    if Audit.equal_traces quiet noisy then []
    else
      [
        Diag.error ~rule:rule_audit_nondet
          ~context:
            [
              ("quiet_trace", Format.asprintf "%a" Audit.pp_trace quiet);
              ("noisy_trace", Format.asprintf "%a" Audit.pp_trace noisy);
            ]
          (Printf.sprintf
             "shared-data access trace of the domain switch depends on the \
              outgoing domain's behaviour (%d vs %d events): the §4.1 audit \
              fails"
             (List.length quiet) (List.length noisy));
      ]
  end

let run ?subject ?(dynamic = true) b =
  let sys = b.Boot.sys in
  let subject = Option.value subject ~default:(default_subject b) in
  let static = lint_view (view_of_booted b) in
  let prof = profile_findings (System.platform sys) (System.cfg sys) in
  let audit = if dynamic then audit_findings b else [] in
  { Diag.subject; findings = static @ prof @ audit }
