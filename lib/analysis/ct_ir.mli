(** A small guest-program IR for constant-time analysis.

    Programs are straight-line/structured code over integer registers
    and named word arrays: assignments, conditionals, loops, and
    array loads/stores.  Parameters are tainted [Public] or [Secret].
    The IR exists to ask one question two ways:

    - {b statically} ({!Ctcheck}): does a secret ever flow into a
      branch condition or a memory address?
    - {b dynamically}: execute the program on {!Tp_hw.Machine} under
      two different secrets and diff the address/branch event traces.

    Every [If]/[While] has a stable site id (preorder position) so
    static findings and dynamic trace divergences refer to the same
    program points. *)

type reg = int

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** raises [Division_by_zero] on 0, like the hardware would trap *)
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt  (** 1 if [a < b] else 0 *)
  | Eq  (** 1 if [a = b] else 0 *)

type expr = Int of int | Reg of reg | Bin of binop * expr * expr

type stmt =
  | Set of reg * expr
  | Load of reg * string * expr  (** [r := arr[idx]] *)
  | Store of string * expr * expr  (** [arr[idx] := v] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list

type taint = Public | Secret

type program = {
  p_name : string;
  p_arrays : (string * int) list;  (** array name, length in words *)
  p_params : (reg * string * taint) list;  (** register, name, taint *)
  p_body : stmt list;
}

val validate : program -> unit
(** @raise Invalid_argument on references to undeclared arrays or
    parameters/registers never assigned. *)

val n_regs : program -> int
(** One past the highest register mentioned. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

(** {1 Site-annotated form}

    [If]/[While] nodes numbered in preorder — the common coordinate
    system of the static checker's findings and the dynamic trace's
    branch events. *)

type astmt =
  | ASet of reg * expr
  | ALoad of reg * string * expr
  | AStore of string * expr * expr
  | AIf of int * expr * astmt list * astmt list
  | AWhile of int * expr * astmt list

val annotate : stmt list -> astmt list

(** {1 Dynamic execution} *)

val word : int
(** Bytes per array element. *)

val data_base : int
(** Default base address of the first array buffer. *)

val code_base : int
(** Default base address of branch sites (site [i] fetches from
    [code_base + 64*i]). *)

val array_layout :
  ?arrays_at:(string * int) list -> program -> (string * int * int) list
(** [(name, base, len)] for every declared array.  By default arrays
    get disjoint page-aligned buffers packed upward from {!data_base}
    in declaration order; [arrays_at] pins named arrays to explicit
    page-aligned bases instead (unpinned arrays keep the default
    packing), which is how the small-scope certifier controls page
    colours.
    @raise Invalid_argument if a pinned base is not page-aligned. *)

type event =
  | Ev_load of int  (** virtual address *)
  | Ev_store of int
  | Ev_branch of int * bool  (** site id, taken *)

type trace = event list

type exec_result = {
  x_trace : trace;
  x_cycles : int;  (** machine cycles consumed *)
  x_regs : int array;  (** final register file *)
}

val execute :
  ?arrays_at:(string * int) list ->
  ?code_at:int ->
  Tp_hw.Machine.t ->
  core:int ->
  program ->
  inputs:(reg * int) list ->
  exec_result
(** Run the program on the machine model: loads/stores issue real
    {!Tp_hw.Machine.access}es (arrays placed per {!array_layout}
    [?arrays_at]), conditionals issue real {!Tp_hw.Machine.cond_branch}es
    at per-site addresses starting at [code_at] (default
    {!code_base}).  The event trace records addresses and
    branch outcomes only — never latencies — so diffing two traces
    compares the program's memory/control footprint, not the cache
    state it happened to start from.  Array {e contents} are not
    modelled: loads return 0 (the analysis is about where a program
    looks, not what it finds there), so programs must not branch on
    loaded values.
    @raise Invalid_argument on missing inputs, out-of-bounds indices,
    or runaway loops (>1e6 steps). *)

val diff_traces : trace -> trace -> (int * string) option
(** First divergence between two traces, as (position, description);
    [None] if identical (including equal length). *)
