(** Kernel switch-path certifier ([tpsim certify --kernel]).

    Lifts the paper-ordered 12-step
    [Tp_kernel.Domain_switch.switch] sequence into an analysable
    access trace ({!lift}) and abstract-interprets it with set-wise
    {e must-coverage}: deterministic accesses at layout-fixed virtual
    addresses pin ways of the virtually-indexed structures to public
    content, and the certified per-switch residue of each channel is
    its structural capacity minus that coverage — or 0 when the
    configuration closes the channel (flush or spatial partition).
    Variable-address accesses contribute no coverage;
    physically-indexed caches and the branch predictor get zero
    coverage (sound under-approximation).

    Cross-validated two ways: {!Certify.exhaustive3} (observational
    determinism under all 3-domain schedules of the shrunken machine,
    [CERT-K-XCHECK-EXHAUSTIVE] on contradiction) and {!check_sound}
    (the certificate must stay inside its [Tp_hw.Bounds]-derived
    analytic envelope, [TP-KCERT-UNSOUND] otherwise — the linter runs
    this per platform/config).

    Certificates serialise to deterministic, content-digested JSON
    ({!to_json}); the digest covers everything {e except} the
    exhaustive block ({!digest}), so the campaign daemon can stamp
    trials with the same digest without model checking. *)

val schema : string
(** ["tpsim-kcert/1"], embedded in every artifact. *)

(** {1 Rule identifiers} *)

val rule_l1d_residue : string
val rule_l1i_residue : string
val rule_tlb_residue : string
val rule_btb_residue : string
val rule_llc_residue : string

val rule_pad_timing : string
(** ["CERT-K-PAD-TIMING"]: configured pad below the analytic
    worst-case switch cost. *)

val rule_xcheck : string
(** ["CERT-K-XCHECK-EXHAUSTIVE"]: a 0-bit kernel certificate
    contradicted by a 3-domain exhaustive counterexample. *)

val channel_rule : Certify.channel -> string

(** {1 The lifted switch trace} *)

type access = {
  a_what : string;
  a_vaddr : int;
  a_bytes : int;
  a_kind : Tp_hw.Defs.access_kind;
  a_must : bool;
      (** address identical on every switch: counts toward coverage *)
}

type step = {
  s_index : int;  (** 1-based paper step number *)
  s_name : string;
  s_accesses : access list;
  s_flushes : string list;  (** step 8's flush operations, by name *)
}

val lift : Tp_hw.Platform.t -> Tp_kernel.Config.t -> step list
(** The 12 steps of a domain-crossing switch under this configuration,
    with the exact accesses [Domain_switch.switch] performs at the
    virtual addresses [Tp_kernel.Layout] fixes.  The x86 manual L1
    flush appears as its real flush-buffer sweep, so its scrubbing
    effect is derived from coverage rather than asserted. *)

(** {1 Certificates} *)

type bound = {
  kb_channel : Certify.channel;
  kb_raw : int;  (** structural capacity: bits with no protection *)
  kb_covered : int;  (** ways pinned to public content by the trace *)
  kb_bits : int;  (** certified per-switch bound *)
  kb_scrubbed : bool;
  kb_note : string;
}

type cert = {
  k_platform : string;
  k_config_name : string;  (** scenario slug, e.g. ["protected"] *)
  k_config : Tp_kernel.Config.t;
  k_steps : step list;
  k_bounds : bound list;
  k_timing_bits : int;
  k_pad_bound : int;
  k_pad_effective : int;
  k_exhaustive : Certify.exhaustive_result option;
  k_exclusions : string list;
}

val state_bits : cert -> int
val total_bits : cert -> int

val certify :
  ?exhaustive:Certify.exhaustive_result ->
  Tp_hw.Platform.t ->
  config_name:string ->
  Tp_kernel.Config.t ->
  cert
(** Certify the switch path for one (platform, configuration).  Pure:
    no machine traffic.  Pass [exhaustive] (from
    {!Certify.exhaustive3}) to embed the cross-validation result in
    the certificate (outside the digest). *)

(** {1 Soundness canary} *)

val analytic_worst_bits : Tp_hw.Platform.t -> Tp_kernel.Config.t -> int
(** The analytic envelope: every channel at full structural capacity
    plus the pad-slack capacity of {!Lint.pad_bound}.  No sound
    certificate can exceed it. *)

val check_sound : Tp_hw.Platform.t -> cert -> Diag.finding list
(** [TP-KCERT-UNSOUND] findings when the certificate escapes its
    envelope: a channel above its structural capacity, timing bits
    above the pad-bound capacity, or the total above
    {!analytic_worst_bits}.  Empty on every sound certificate. *)

val lint_crosscheck :
  Tp_hw.Platform.t -> config_name:string -> Tp_kernel.Config.t ->
  Diag.finding list
(** {!certify} then {!check_sound} — the linter's per-configuration
    unsoundness canary. *)

(** {1 Diagnostics} *)

val report : cert -> Diag.report
(** Findings for every non-zero channel residue ([CERT-K-*-RESIDUE]),
    residual timing bits ([CERT-K-PAD-TIMING]) and an exhaustive
    contradiction ([CERT-K-XCHECK-EXHAUSTIVE]); clean iff the
    certificate is 0 bits and uncontradicted. *)

val pp : Format.formatter -> cert -> unit

(** {1 Deterministic artifact JSON + digest} *)

val core_json : cert -> string
(** The digested payload: schema, platform, config, bits, per-channel
    bounds, the lifted steps and the exclusions — everything except
    the exhaustive block. *)

val digest : cert -> string
(** MD5 hex of {!core_json}.  Identical whether or not the exhaustive
    check ran. *)

val to_json : cert -> string
(** {!core_json} plus the exhaustive result (when present) and the
    {!digest} — the golden-certificate artifact format. *)

val artifact_name : cert -> string
(** ["<platform>-<config_name>.cert.json"]. *)
