(** Kernel lifecycle certifier ([tpsim certify --kernel]).

    Lifts the three kernel lifecycle paths — the paper-ordered 12-step
    [Tp_kernel.Domain_switch.switch] sequence, the image clone
    ([Tp_kernel.Clone.clone]) and its teardown
    ([Tp_kernel.Clone.destroy]) — into analysable access traces
    ({!lift}) and abstract-interprets them with set-wise
    {e must-coverage} through the unified {!Absint} kernel-trace
    back-end: deterministic accesses at layout-fixed virtual addresses
    pin ways of the virtually-indexed structures to public content,
    and the certified per-execution residue of each channel is its
    structural capacity minus that coverage — or 0 when the
    configuration closes the channel (flush or spatial partition).
    Variable-address accesses contribute no coverage;
    physically-indexed caches get zero coverage (sound
    under-approximation).  The branch predictor earns coverage through
    the model's own index hashes ({!Tp_hw.Btb.set_of_addr},
    {!Tp_hw.Bhb.index_of}) from each path's deterministic jump sites
    and run-length-encoded conditional-branch trace.

    Clone/destroy certificates also carry the operation's analytic
    duration bound ([k_op_bound]): their latency is caller-visible, so
    with stateful channels left open it contributes
    [ceil_log2 (bound + 1)] timing bits, and with every channel
    scrubbed/partitioned it is deterministic and contributes none.

    Cross-validated two ways: {!Certify.exhaustive3_path}
    (observational determinism under all 3-domain schedules of the
    shrunken machine with the neighbour performing this path's
    operation, [CERT-K-XCHECK-EXHAUSTIVE] on contradiction) and
    {!check_sound} (the certificate must stay inside its
    [Tp_hw.Bounds]-derived analytic envelope, [TP-KCERT-UNSOUND]
    otherwise — the linter runs this per platform/config/path).

    Certificates serialise to deterministic, content-digested JSON
    ({!to_json}); the digest covers everything {e except} the
    exhaustive block ({!digest}), so the campaign daemon can stamp
    trials with the same digest without model checking. *)

val schema : string
(** ["tpsim-kcert/2"], embedded in every artifact.  v2 added the
    [path] / [op_bound] fields and per-step [branches] / [jumps]. *)

(** {1 Rule identifiers} *)

val rule_l1d_residue : string
val rule_l1i_residue : string
val rule_tlb_residue : string
val rule_btb_residue : string
val rule_llc_residue : string

val rule_pad_timing : string
(** ["CERT-K-PAD-TIMING"]: residual timing bits — configured pad below
    the analytic worst-case switch cost, or an unscrubbed lifecycle
    operation's state-dependent duration. *)

val rule_xcheck : string
(** ["CERT-K-XCHECK-EXHAUSTIVE"]: a 0-bit kernel certificate
    contradicted by a 3-domain exhaustive counterexample. *)

val channel_rule : Certify.channel -> string

(** {1 Paths} *)

type path = Certify.kernel_path = Switch | Clone | Destroy

val path_slug : path -> string
(** ["switch"] / ["clone"] / ["destroy"]. *)

val all_paths : path list
(** [[Switch; Clone; Destroy]] — the full certification matrix. *)

(** {1 The lifted traces} *)

type access = {
  a_what : string;
  a_vaddr : int;
  a_bytes : int;
  a_kind : Tp_hw.Defs.access_kind;
  a_must : bool;
      (** address identical on every execution: counts toward coverage *)
}

type step = {
  s_index : int;  (** 1-based step number (paper order for the switch) *)
  s_name : string;
  s_accesses : access list;
  s_flushes : string list;  (** flush operations, by name *)
  s_branches : (int * bool * int) list;
      (** deterministic conditional branches, RLE [(site, taken, repeat)] *)
  s_jumps : int list;  (** fixed taken-jump sites (BTB coverage) *)
}

val lift : ?path:path -> Tp_hw.Platform.t -> Tp_kernel.Config.t -> step list
(** The lifted trace of the given path (default [Switch]) under this
    configuration: the 12 steps of a domain-crossing switch, the 6
    steps of a clone, or the 6 steps of a destroy, with the exact
    accesses the implementation performs at the virtual addresses
    [Tp_kernel.Layout] fixes.  The x86 manual L1 flush appears as its
    real flush-buffer sweep, so its scrubbing effect is derived from
    coverage rather than asserted. *)

(** {1 Reference coverage (differential-test oracle)} *)

val covered_cache : Tp_hw.Cache.geometry -> access list -> int
(** The original standalone set-wise must-coverage of a cache by a
    (pre-filtered, must-only) access list.  Kept as an independent
    reference implementation: the differential test checks that the
    unified {!Absint.cover_trace} back-end reproduces it bit-for-bit.
    New code should use the Absint back-end. *)

val covered_tlb : Tp_hw.Tlb.geometry -> int list -> int
(** Reference TLB coverage from a virtual-page-number list. *)

val pages_of : access list -> int list
(** Virtual page numbers overlapped by the accesses (with
    duplicates). *)

(** {1 Certificates} *)

type bound = {
  kb_channel : Certify.channel;
  kb_raw : int;  (** structural capacity: bits with no protection *)
  kb_covered : int;  (** ways pinned to public content by the trace *)
  kb_bits : int;  (** certified per-execution bound *)
  kb_scrubbed : bool;
  kb_note : string;
}

type cert = {
  k_platform : string;
  k_config_name : string;  (** scenario slug, e.g. ["protected"] *)
  k_config : Tp_kernel.Config.t;
  k_path : path;
  k_steps : step list;
  k_bounds : bound list;
  k_timing_bits : int;
  k_pad_bound : int;
  k_pad_effective : int;
  k_op_bound : int;
      (** analytic duration bound of the lifecycle operation
          ({!Lint.clone_bound} / {!Lint.destroy_bound}); 0 for the
          (padded) switch path *)
  k_exhaustive : Certify.exhaustive_result option;
  k_exclusions : string list;
}

val state_bits : cert -> int
val total_bits : cert -> int

val certify :
  ?exhaustive:Certify.exhaustive_result ->
  ?path:path ->
  Tp_hw.Platform.t ->
  config_name:string ->
  Tp_kernel.Config.t ->
  cert
(** Certify one (platform, configuration, path) — [path] defaults to
    [Switch].  Pure: no machine traffic.  Pass [exhaustive] (from
    {!Certify.exhaustive3_path} with the same path) to embed the
    cross-validation result in the certificate (outside the
    digest). *)

(** {1 Soundness canary} *)

val analytic_worst_bits :
  ?path:path -> Tp_hw.Platform.t -> Tp_kernel.Config.t -> int
(** The analytic envelope: every channel at full structural capacity
    plus the pad-slack capacity of {!Lint.pad_bound} and (for
    clone/destroy) the operation-duration capacity.  No sound
    certificate can exceed it. *)

val check_sound : Tp_hw.Platform.t -> cert -> Diag.finding list
(** [TP-KCERT-UNSOUND] findings when the certificate escapes its
    envelope: a channel above its structural capacity, timing bits
    above the pad+operation capacity, or the total above
    {!analytic_worst_bits} for the certificate's path.  Empty on every
    sound certificate. *)

val lint_crosscheck :
  Tp_hw.Platform.t -> config_name:string -> Tp_kernel.Config.t ->
  Diag.finding list
(** {!certify} then {!check_sound} for {e all three} paths — the
    linter's per-configuration unsoundness canary. *)

(** {1 Diagnostics} *)

val report : cert -> Diag.report
(** Findings for every non-zero channel residue ([CERT-K-*-RESIDUE]),
    residual timing bits ([CERT-K-PAD-TIMING]) and an exhaustive
    contradiction ([CERT-K-XCHECK-EXHAUSTIVE]); clean iff the
    certificate is 0 bits and uncontradicted. *)

val pp : Format.formatter -> cert -> unit

(** {1 Deterministic artifact JSON + digest} *)

val core_json : cert -> string
(** The digested payload: schema, platform, config, path, bits,
    per-channel bounds, the lifted steps (with branches and jumps) and
    the exclusions — everything except the exhaustive block. *)

val digest : cert -> string
(** MD5 hex of {!core_json}.  Identical whether or not the exhaustive
    check ran. *)

val to_json : cert -> string
(** {!core_json} plus the exhaustive result (when present) and the
    {!digest} — the golden-certificate artifact format. *)

val artifact_name : cert -> string
(** ["<platform>-<config_name>-<path>.cert.json"]. *)
