type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  message : string;
  context : (string * string) list;
}

type report = { subject : string; findings : finding list }

let mk severity ?(context = []) ~rule message = { rule; severity; message; context }
let error ?context ~rule message = mk Error ?context ~rule message
let warning ?context ~rule message = mk Warning ?context ~rule message
let info ?context ~rule message = mk Info ?context ~rule message

let clean r = r.findings = []
let count sev r = List.length (List.filter (fun f -> f.severity = sev) r.findings)

let rules r =
  List.sort_uniq String.compare (List.map (fun f -> f.rule) r.findings)

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let summary r =
  if clean r then "clean"
  else
    let part sev name =
      match count sev r with
      | 0 -> None
      | 1 -> Some ("1 " ^ name)
      | n -> Some (Printf.sprintf "%d %ss" n name)
    in
    String.concat ", "
      (List.filter_map Fun.id
         [ part Error "error"; part Warning "warning"; part Info "info" ])

let pp_finding ppf f =
  Format.fprintf ppf "%-7s %-22s %s" (severity_name f.severity) f.rule f.message

let pp_report ppf r =
  Format.fprintf ppf "%s: %s@." r.subject (summary r);
  List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) r.findings

(* Hand-rolled JSON, same approach as Tp_obs.Trace: the dependency cone
   has no JSON library and the shapes here are fixed. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  let ctx =
    match f.context with
    | [] -> ""
    | kvs ->
        let pairs =
          List.map
            (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
            kvs
        in
        Printf.sprintf ",\"context\":{%s}" (String.concat "," pairs)
  in
  Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"%s}"
    (json_escape f.rule) (severity_name f.severity) (json_escape f.message) ctx

let report_to_json r =
  Printf.sprintf "{\"subject\":\"%s\",\"clean\":%b,\"findings\":[%s]}"
    (json_escape r.subject) (clean r)
    (String.concat "," (List.map finding_to_json r.findings))

let reports_to_json rs =
  Printf.sprintf "[%s]" (String.concat ",\n" (List.map report_to_json rs))

(* SARIF 2.1.0, the minimal shape GitHub code scanning accepts: one
   run, one driver, rule metadata collected from the findings, one
   result per finding.  The analyses are configuration-level, so
   results carry a synthetic location (README.md:1) — code scanning
   requires a location but these findings have no meaningful file/line
   to point at. *)

let severity_sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let reports_to_sarif ?(tool_name = "tpsim") rs =
  let findings =
    List.concat_map (fun r -> List.map (fun f -> (r.subject, f)) r.findings) rs
  in
  let rule_ids =
    List.sort_uniq String.compare (List.map (fun (_, f) -> f.rule) findings)
  in
  let rule_json id =
    Printf.sprintf
      "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
      (json_escape id) (json_escape id)
  in
  let rule_index id =
    let rec go i = function
      | [] -> 0
      | x :: tl -> if x = id then i else go (i + 1) tl
    in
    go 0 rule_ids
  in
  let result_json (subject, f) =
    let props =
      (("subject", subject) :: f.context)
      |> List.map (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
      |> String.concat ","
    in
    Printf.sprintf
      "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"README.md\"},\"region\":{\"startLine\":1}}}],\"properties\":{%s}}"
      (json_escape f.rule) (rule_index f.rule)
      (severity_sarif_level f.severity)
      (json_escape (Printf.sprintf "%s: %s" subject f.message))
      props
  in
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"%s\",\"rules\":[%s]}},\"results\":[%s]}]}"
    (json_escape tool_name)
    (String.concat "," (List.map rule_json rule_ids))
    (String.concat ",\n" (List.map result_json findings))
