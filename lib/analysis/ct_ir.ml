type reg = int

type binop = Add | Sub | Mul | Div | Mod | And | Or | Xor | Shl | Shr | Lt | Eq

type expr = Int of int | Reg of reg | Bin of binop * expr * expr

type stmt =
  | Set of reg * expr
  | Load of reg * string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list

type taint = Public | Secret

type program = {
  p_name : string;
  p_arrays : (string * int) list;
  p_params : (reg * string * taint) list;
  p_body : stmt list;
}

let rec expr_regs = function
  | Int _ -> []
  | Reg r -> [ r ]
  | Bin (_, a, b) -> expr_regs a @ expr_regs b

let rec max_reg_stmt s =
  match s with
  | Set (r, e) -> List.fold_left max r (expr_regs e)
  | Load (r, _, e) -> List.fold_left max r (expr_regs e)
  | Store (_, i, v) -> List.fold_left max (-1) (expr_regs i @ expr_regs v)
  | If (c, a, b) ->
      List.fold_left max (-1) (expr_regs c @ List.map max_reg_stmt (a @ b))
  | While (c, body) ->
      List.fold_left max (-1) (expr_regs c @ List.map max_reg_stmt body)

let n_regs p =
  let m =
    List.fold_left max (-1)
      (List.map (fun (r, _, _) -> r) p.p_params @ List.map max_reg_stmt p.p_body)
  in
  m + 1

let validate p =
  let arrays = List.map fst p.p_arrays in
  let defined = ref (List.map (fun (r, _, _) -> r) p.p_params) in
  let use_arr name =
    if not (List.mem name arrays) then
      invalid_arg
        (Printf.sprintf "Ct_ir: program %s references undeclared array %s"
           p.p_name name)
  in
  let use_regs e =
    List.iter
      (fun r ->
        if not (List.mem r !defined) then
          invalid_arg
            (Printf.sprintf "Ct_ir: program %s reads r%d before assignment"
               p.p_name r))
      (expr_regs e)
  in
  let rec go s =
    match s with
    | Set (r, e) ->
        use_regs e;
        defined := r :: !defined
    | Load (r, a, i) ->
        use_arr a;
        use_regs i;
        defined := r :: !defined
    | Store (a, i, v) ->
        use_arr a;
        use_regs i;
        use_regs v
    | If (c, t, e) ->
        use_regs c;
        List.iter go t;
        List.iter go e
    | While (c, body) ->
        use_regs c;
        List.iter go body
  in
  List.iter go p.p_body

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Eq -> "=="

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Reg r -> Format.fprintf ppf "r%d" r
  | Bin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b

let pp_stmt ppf = function
  | Set (r, e) -> Format.fprintf ppf "r%d := %a" r pp_expr e
  | Load (r, a, i) -> Format.fprintf ppf "r%d := %s[%a]" r a pp_expr i
  | Store (a, i, v) -> Format.fprintf ppf "%s[%a] := %a" a pp_expr i pp_expr v
  | If (c, _, _) -> Format.fprintf ppf "if %a" pp_expr c
  | While (c, _) -> Format.fprintf ppf "while %a" pp_expr c

(* ------------------------------------------------------------------ *)
(* Dynamic execution                                                   *)

type event = Ev_load of int | Ev_store of int | Ev_branch of int * bool

type trace = event list

type exec_result = { x_trace : trace; x_cycles : int; x_regs : int array }

let word = 8
let data_base = 0x1000_0000
let code_base = 0x2000_0000
let max_steps = 1_000_000

(* Disjoint page-aligned buffer per array, packed upward from
   [data_base] in declaration order.  [arrays_at] pins individual
   arrays to explicit page-aligned bases (the small-scope checker uses
   this to control page colours); unpinned arrays get exactly the
   default packing, so an empty [arrays_at] reproduces the historical
   layout bit-for-bit. *)
let array_layout ?(arrays_at = []) p =
  let page = Tp_hw.Defs.page_size in
  let next = ref data_base in
  List.map
    (fun (name, len) ->
      match List.assoc_opt name arrays_at with
      | Some base ->
          if base land (page - 1) <> 0 then
            invalid_arg
              (Printf.sprintf
                 "Ct_ir.array_layout: %s: base %#x for %s not page-aligned"
                 p.p_name base name);
          (name, base, len)
      | None ->
          let base = !next in
          let bytes = (len * word) + page - 1 in
          next := !next + (bytes / page * page) + page;
          (name, base, len))
    p.p_arrays

type astmt =
  | ASet of reg * expr
  | ALoad of reg * string * expr
  | AStore of string * expr * expr
  | AIf of int * expr * astmt list * astmt list
  | AWhile of int * expr * astmt list

(* Stable site ids: preorder position of every If/While. *)
let annotate body =
  let n = ref 0 in
  let rec go s =
    match s with
    | Set (r, e) -> ASet (r, e)
    | Load (r, a, i) -> ALoad (r, a, i)
    | Store (a, i, v) -> AStore (a, i, v)
    | If (c, t, e) ->
        let id = !n in
        incr n;
        let t = List.map go t in
        let e = List.map go e in
        AIf (id, c, t, e)
    | While (c, b) ->
        let id = !n in
        incr n;
        AWhile (id, c, List.map go b)
  in
  List.map go body

let execute ?arrays_at ?(code_at = code_base) m ~core p ~inputs =
  validate p;
  let regs = Array.make (max 1 (n_regs p)) 0 in
  List.iter
    (fun (r, name, _) ->
      match List.assoc_opt r inputs with
      | Some v -> regs.(r) <- v
      | None ->
          invalid_arg
            (Printf.sprintf "Ct_ir.execute: %s: no input for parameter %s (r%d)"
               p.p_name name r))
    p.p_params;
  let bases = Hashtbl.create 8 in
  List.iter
    (fun (name, base, len) -> Hashtbl.replace bases name (base, len))
    (array_layout ?arrays_at p);
  let body = annotate p.p_body in
  let events = ref [] in
  let steps = ref 0 in
  let step () =
    incr steps;
    if !steps > max_steps then
      invalid_arg
        (Printf.sprintf "Ct_ir.execute: %s: runaway loop (>%d steps)" p.p_name
           max_steps)
  in
  let t0 = Tp_hw.Machine.cycles m ~core in
  let rec eval e =
    match e with
    | Int n -> n
    | Reg r -> regs.(r)
    | Bin (op, a, b) -> (
        let va = eval a and vb = eval b in
        (* A couple of ALU cycles per operation keeps relative timing
           sane; constant per op, so it never depends on operands. *)
        Tp_hw.Machine.add_cycles m ~core 1;
        match op with
        | Add -> va + vb
        | Sub -> va - vb
        | Mul -> va * vb
        | Div -> va / vb
        | Mod -> va mod vb
        | And -> va land vb
        | Or -> va lor vb
        | Xor -> va lxor vb
        | Shl -> va lsl vb
        | Shr -> va asr vb
        | Lt -> if va < vb then 1 else 0
        | Eq -> if va = vb then 1 else 0)
  in
  let addr name idx =
    let base, len =
      try Hashtbl.find bases name with Not_found -> assert false
    in
    if idx < 0 || idx >= len then
      invalid_arg
        (Printf.sprintf "Ct_ir.execute: %s: %s[%d] out of bounds (len %d)"
           p.p_name name idx len)
    else base + (idx * word)
  in
  let mem_access a kind =
    ignore
      (Tp_hw.Machine.access m ~core ~asid:0 ~vaddr:a ~paddr:a ~kind ())
  in
  let branch site taken =
    let va = code_at + (site * 64) in
    ignore (Tp_hw.Machine.cond_branch m ~core ~asid:0 ~vaddr:va ~paddr:va ~taken);
    events := Ev_branch (site, taken) :: !events
  in
  let rec exec s =
    step ();
    match s with
    | ASet (r, e) -> regs.(r) <- eval e
    | ALoad (r, name, i) ->
        let a = addr name (eval i) in
        mem_access a Tp_hw.Defs.Read;
        events := Ev_load a :: !events;
        regs.(r) <- 0 (* array contents are not modelled, only addresses *)
    | AStore (name, i, v) ->
        let a = addr name (eval i) in
        ignore (eval v);
        mem_access a Tp_hw.Defs.Write;
        events := Ev_store a :: !events
    | AIf (site, c, t, e) ->
        let taken = eval c <> 0 in
        branch site taken;
        List.iter exec (if taken then t else e)
    | AWhile (site, c, loop_body) as w ->
        let taken = eval c <> 0 in
        branch site taken;
        if taken then begin
          List.iter exec loop_body;
          exec w
        end
  in
  List.iter exec body;
  {
    x_trace = List.rev !events;
    x_cycles = Tp_hw.Machine.cycles m ~core - t0;
    x_regs = regs;
  }

let event_str = function
  | Ev_load a -> Printf.sprintf "load %#x" a
  | Ev_store a -> Printf.sprintf "store %#x" a
  | Ev_branch (s, t) -> Printf.sprintf "branch@%d %staken" s (if t then "" else "not-")

let diff_traces a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a', y :: b' ->
        if x = y then go (i + 1) a' b'
        else Some (i, Printf.sprintf "%s vs %s" (event_str x) (event_str y))
    | x :: _, [] -> Some (i, Printf.sprintf "%s vs end-of-trace" (event_str x))
    | [], y :: _ -> Some (i, Printf.sprintf "end-of-trace vs %s" (event_str y))
  in
  go 0 a b
