(* Quickstart: boot a simulated machine, partition it into two
   security domains with time protection, run a thread in each, and
   show the mechanisms at work.

   Run with: dune exec examples/quickstart.exe *)

open Tp_kernel

let () =
  let platform = Tp_hw.Platform.haswell in
  Format.printf "Booting a %s with time protection...@." platform.Tp_hw.Platform.name;

  (* Boot builds what the paper's initial user process would: it splits
     free memory into per-domain coloured pools, clones a kernel image
     for each domain out of that domain's own pool, and wires up
     address spaces. *)
  let b =
    Boot.boot ~platform ~config:(Config.protected_ platform) ~domains:2 ()
  in
  let d0 = b.Boot.domains.(0) and d1 = b.Boot.domains.(1) in

  Format.printf "domain 0: colours %a, kernel image #%d@." Colour.pp
    d0.Boot.dom_colours d0.Boot.dom_kernel.Types.ki_id;
  Format.printf "domain 1: colours %a, kernel image #%d@." Colour.pp
    d1.Boot.dom_colours d1.Boot.dom_kernel.Types.ki_id;
  Format.printf "kernel clone took %d cycles (%.1f us)@."
    (Clone.clone_cost_cycles b.Boot.sys)
    (Tp_hw.Platform.cycles_to_us platform (Clone.clone_cost_cycles b.Boot.sys));

  (* Each domain runs a thread.  Bodies are invoked once per time
     slice and perform memory accesses through their Uctx. *)
  let slices_seen = Array.make 2 0 in
  let mk_body dom_id buf = fun ctx ->
    slices_seen.(dom_id) <- slices_seen.(dom_id) + 1;
    (* Touch a little data, then sleep until preempted. *)
    for i = 0 to 63 do
      Uctx.write ctx (buf + (i * 64))
    done;
    Uctx.idle_rest ctx
  in
  let buf0 = Boot.alloc_pages b d0 ~pages:4 in
  let buf1 = Boot.alloc_pages b d1 ~pages:4 in
  ignore (Boot.spawn b d0 (mk_body 0 buf0));
  ignore (Boot.spawn b d1 (mk_body 1 buf1));

  (* Run ten 1 ms time slices on core 0. *)
  let slice = Tp_hw.Platform.us_to_cycles platform 1000.0 in
  Exec.run_slices b.Boot.sys ~core:0 ~slice_cycles:slice ~slices:10 ();

  Format.printf "after 10 slices: domain 0 ran %d, domain 1 ran %d@."
    slices_seen.(0) slices_seen.(1);

  (* Every domain switch flushed on-core state and padded to the
     configured worst case; check the padding attribute: *)
  Format.printf "switch padding: %.1f us (per kernel image attribute)@."
    (Tp_hw.Platform.cycles_to_us platform d0.Boot.dom_kernel.Types.ki_pad_cycles);

  (* Tear down domain 0's kernel through the capability system: revoke
     the master capability's descendants for that domain. *)
  Clone.destroy b.Boot.sys ~core:0 d0.Boot.dom_kernel_cap;
  Format.printf "destroyed domain 0's kernel; threads suspended: %b@."
    (List.for_all
       (fun t -> t.Types.t_state = Types.Ts_suspended)
       d0.Boot.dom_threads);
  Format.printf "initial kernel still active: %b@."
    ((System.initial_kernel b.Boot.sys).Types.ki_state = Types.Ki_active);
  Format.printf "done.@."
