examples/channel_analysis.ml: Array Format Tp_channel Tp_util
