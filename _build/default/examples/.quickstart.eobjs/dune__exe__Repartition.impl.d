examples/repartition.ml: Array Boot Clone Colour Config Exec Format List Objects Printf Retype String System Tp_hw Tp_kernel Types
