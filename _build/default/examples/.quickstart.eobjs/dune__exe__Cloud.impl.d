examples/cloud.ml: Array Format Scenario Tp_attacks Tp_core Tp_hw Tp_util
