examples/confinement.ml: Format Scenario Tp_attacks Tp_channel Tp_core Tp_hw Tp_util
