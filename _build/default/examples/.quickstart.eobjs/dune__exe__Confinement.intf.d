examples/confinement.mli:
