examples/repartition.mli:
