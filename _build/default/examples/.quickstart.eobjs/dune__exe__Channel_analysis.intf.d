examples/channel_analysis.mli:
