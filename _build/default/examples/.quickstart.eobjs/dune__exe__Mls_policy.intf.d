examples/mls_policy.mli:
