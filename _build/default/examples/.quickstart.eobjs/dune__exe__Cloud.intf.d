examples/cloud.mli:
