examples/quickstart.ml: Array Boot Clone Colour Config Exec Format List System Tp_hw Tp_kernel Types Uctx
