examples/mls_policy.ml: Format Tp_channel Tp_core Tp_hw
