examples/quickstart.mli:
