(* Using the channel-measurement toolchain on its own (§5.1): estimate
   mutual information with KDE + the rectangle method, and apply the
   shuffle-based zero-leakage test, on synthetic channels with known
   ground truth.

   Run with: dune exec examples/channel_analysis.exe *)

let rng = Tp_util.Rng.create ~seed:42

let show name samples =
  let r = Tp_channel.Leakage.test ~rng samples in
  Format.printf "%-34s %a@." name Tp_channel.Leakage.pp_result r

let () =
  Format.printf
    "Channel analysis toolchain demo: M is the MI estimate, M0 the 95%%\n\
     zero-leakage bound from 100 output shuffles (1 mb = 0.001 bit).@.@.";

  (* A perfect 2-symbol channel: exactly 1 bit. *)
  let n = 2000 in
  show "perfect binary channel"
    {
      Tp_channel.Mi.input = Array.init n (fun i -> i land 1);
      output = Array.init n (fun i -> if i land 1 = 0 then 0.0 else 100.0);
    };

  (* A noisy channel: Gaussian conditionals one sigma apart. *)
  let input = Array.init n (fun _ -> Tp_util.Rng.int rng 2) in
  let output =
    Array.map
      (fun i -> Tp_util.Rng.gaussian rng ~mu:(float_of_int i) ~sigma:1.0)
      input
  in
  show "noisy binary channel (d'=1)" { Tp_channel.Mi.input = input; output };

  (* No channel at all: outputs independent of inputs.  The MI
     estimate is still non-zero (sampling noise) — the shuffle test is
     what tells us it is consistent with zero. *)
  let input = Array.init n (fun _ -> Tp_util.Rng.int rng 4) in
  let output = Array.init n (fun _ -> Tp_util.Rng.gaussian rng ~mu:50.0 ~sigma:5.0) in
  show "no channel (independent)" { Tp_channel.Mi.input = input; output };

  (* A tiny real leak, of the order the paper's tool can resolve. *)
  let input = Array.init n (fun _ -> Tp_util.Rng.int rng 2) in
  let output =
    Array.map
      (fun i ->
        Tp_util.Rng.gaussian rng ~mu:(0.35 *. float_of_int i) ~sigma:1.0)
      input
  in
  show "weak leak (d'=0.35)" { Tp_channel.Mi.input = input; output };

  Format.printf
    "@.The channel matrix of the noisy channel (conditional probability of\n\
     each output bin given the input symbol):@.@.";
  let input = Array.init n (fun _ -> Tp_util.Rng.int rng 2) in
  let output =
    Array.map
      (fun i -> Tp_util.Rng.gaussian rng ~mu:(2.0 *. float_of_int i) ~sigma:1.0)
      input
  in
  let m = Tp_channel.Matrix.of_samples ~bins:16 { Tp_channel.Mi.input = input; output } in
  Tp_channel.Matrix.pp Format.std_formatter m;
  Format.printf "done.@."
