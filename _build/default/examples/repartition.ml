(* Dynamic partitioning lifecycle (§3.3, §4.4): the property that made
   the paper reject static multikernel-style partitioning.

   The kernel is ignorant of the security policy: the initial task
   creates domains by cloning kernels on demand, subdivides a running
   partition into nested sub-partitions, tears partitions down by
   revoking capabilities, and re-partitions the reclaimed memory — all
   without a reboot, and with the initial kernel's idle thread
   guaranteed to survive.

   Run with: dune exec examples/repartition.exe *)

open Tp_kernel

let p = Tp_hw.Platform.haswell

let show_kernels sys label =
  let ks = System.kernels sys in
  Format.printf "%-38s %d kernel image(s): %s@." label (List.length ks)
    (String.concat ", "
       (List.map
          (fun k ->
            Printf.sprintf "#%d%s" k.Types.ki_id
              (if k.Types.ki_is_initial then " (initial)" else ""))
          ks))

let () =
  Format.printf "Dynamic partitioning with kernel clone (Haswell, 8 colours)@.@.";
  let b = Boot.boot ~platform:p ~config:(Config.protected_ p) ~domains:2 () in
  let sys = b.Boot.sys in
  show_kernels sys "after boot (2 domains):";

  (* Nested partitioning: domain 0 sub-divides its own pool. *)
  let subs = Boot.subdivide b b.Boot.domains.(0) ~parts:2 ~core:0 in
  show_kernels sys "domain 0 subdivided into 2:";
  List.iter
    (fun d ->
      Format.printf "  sub-domain %d: colours %a, kernel #%d@." d.Boot.dom_id
        Colour.pp d.Boot.dom_colours d.Boot.dom_kernel.Types.ki_id)
    subs;

  (* Tear down the whole domain-0 subtree with one revoke: the CDT
     makes "revoking a Kernel_Image capability destroy all kernels
     cloned from it". *)
  Objects.revoke sys ~core:0 b.Boot.domains.(0).Boot.dom_kernel_cap;
  Clone.destroy sys ~core:0 b.Boot.domains.(0).Boot.dom_kernel_cap;
  show_kernels sys "domain 0 (and its children) revoked:";

  (* Reclaim the memory: revoke the pool, then re-partition it into a
     brand-new domain with a fresh kernel. *)
  Objects.revoke sys ~core:0 b.Boot.domains.(0).Boot.dom_pool;
  let free = Retype.untyped_free_frames b.Boot.domains.(0).Boot.dom_pool in
  Format.printf "pool reclaimed: %d frames free again@." free;
  let kmem =
    Retype.retype_kernel_memory b.Boot.domains.(0).Boot.dom_pool ~platform:p
  in
  let cap = Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem in
  show_kernels sys "new partition cloned from master:";
  Format.printf "new kernel active: %b@."
    ((Clone.the_image cap).Types.ki_state = Types.Ki_active);

  (* The §4.4 guarantee: even destroying every user-created kernel
     leaves a runnable system (the initial idle thread), because the
     initial kernel's Kernel_Memory was never handed to userland. *)
  Objects.revoke sys ~core:0 b.Boot.master;
  show_kernels sys "everything revoked:";
  Format.printf
    "the system is now the paper's quiescent state: \"no user-level \
     threads,\n\
     ... nothing more than acknowledging timer ticks\" — but alive.@.";
  Exec.run_slices sys ~core:0 ~slice_cycles:10_000 ~slices:3 ();
  Format.printf "3 idle ticks executed without incident. done.@."
