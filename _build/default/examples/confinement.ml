(* The confinement scenario (§3.1.1): a Trojan — malicious confined
   code — tries to leak a secret to a spy over the L1-D cache covert
   channel while they time-share a core.  We run the attack against
   the raw system and against time protection and report the measured
   channel capacity.

   Run with: dune exec examples/confinement.exe *)

open Tp_core

let measure kind =
  let p = Tp_hw.Platform.haswell in
  let b = Scenario.boot kind p in
  let chan = Tp_attacks.Cache_channels.l1d in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = 400;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:2024 in
  Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng

let () =
  Format.printf
    "Confinement scenario: a Trojan leaks through the L1-D cache to a spy@.";
  Format.printf
    "(sender encodes 4-bit symbols in the number of cache sets it touches)@.@.";
  let raw = measure Scenario.Raw in
  Format.printf "without time protection: %a@." Tp_channel.Leakage.pp_result raw;
  let prot = measure Scenario.Protected in
  Format.printf "with time protection:    %a@.@." Tp_channel.Leakage.pp_result
    prot;
  (match (raw.Tp_channel.Leakage.verdict, prot.Tp_channel.Leakage.verdict) with
  | Tp_channel.Leakage.Leak, (Tp_channel.Leakage.No_evidence | Tp_channel.Leakage.Negligible) ->
      Format.printf
        "the raw channel carries ~%.1f bits per slice; flushing on-core \
         state on every domain switch closes it.@."
        raw.Tp_channel.Leakage.m
  | _ ->
      Format.printf "unexpected verdict combination — investigate!@.");
  Format.printf "done.@."
