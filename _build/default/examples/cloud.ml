(* The cloud scenario (§3.1.2): two mutually distrusting "VMs" run
   concurrently on different cores of the same processor.  The victim
   decrypts with square-and-multiply ElGamal; the co-resident spy
   mounts the Liu et al. LLC prime&probe attack and tries to read the
   key bits out of the victim's cache footprint (Figure 4).

   Run with: dune exec examples/cloud.exe *)

open Tp_core

let attack kind =
  let p = Tp_hw.Platform.haswell in
  let b = Scenario.boot kind p in
  let rng = Tp_util.Rng.create ~seed:99 in
  Tp_attacks.Crypto.run b ~key_bits:64 ~rng

let () =
  Format.printf
    "Cloud scenario: cross-core LLC side channel against ElGamal decryption@.@.";
  Format.printf "--- co-resident VMs, no time protection ---@.";
  (match attack Scenario.Raw with
  | Some t ->
      Tp_attacks.Crypto.pp_trace Format.std_formatter t;
      Format.printf
        "the spy recovered %.0f%% of the secret key from cache timings alone.@.@."
        (100.0 *. Tp_attacks.Crypto.recovery_rate t)
  | None -> Format.printf "attack failed to calibrate (unexpected on raw)@.@.");
  Format.printf "--- with time protection (coloured memory) ---@.";
  (match attack Scenario.Protected with
  | Some t when Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity ->
      Format.printf "channel still open (unexpected)!@.";
      Tp_attacks.Crypto.pp_trace Format.std_formatter t
  | Some _ | None ->
      Format.printf
        "the spy cannot build an eviction set that observes the victim:\n\
         every physical frame it can obtain has a different page colour, so\n\
         its lines can never conflict with the victim's in the LLC.@.");
  Format.printf "@.note: colouring partitions the LLC without flushing — no\n\
                 per-switch cost, which is what the cloud scenario needs.@.";
  Format.printf "done.@."
