(* Policy-mechanism separation in action (§4.3): a Bell-LaPadula
   system built entirely at user level on top of the kernel's
   per-image padding attribute.

   Padding is the expensive mechanism, and under a hierarchical policy
   it is only needed where a leak would flow *down*.  The kernel knows
   nothing about classification levels — the initial task just writes
   each kernel image's pad attribute via Kernel_SetPad.

   Run with: dune exec examples/mls_policy.exe *)

let () =
  let p = Tp_hw.Platform.haswell in
  Format.printf
    "Bell-LaPadula padding policy over the cache-flush-latency channel@.@.";
  Format.printf
    "Two domains: Low (unclassified) and High (secret).  BLP permits\n\
     information flow upwards; the flush-latency channel flows from the\n\
     outgoing domain to the next one, so only High's kernel pads.@.@.";
  let labels = [| 0; 1 |] in
  Format.printf "padding cost vs symmetric policy: %.0f%% of the domains pad@.@."
    (100.0 *. Tp_core.Mls.padded_fraction ~labels);
  let r = Tp_core.Mls.demo ~seed:7 p in
  Format.printf "High -> Low (forbidden flow):  %a@." Tp_channel.Leakage.pp_result
    r.Tp_core.Mls.high_to_low;
  Format.printf "Low  -> High (authorised flow): %a@.@."
    Tp_channel.Leakage.pp_result r.Tp_core.Mls.low_to_high;
  Format.printf
    "The forbidden direction is closed; the authorised one still carries\n\
     (which BLP allows) and no padding latency was spent suppressing it.\n\
     The kernel mechanisms never saw the policy — only pad attributes.@.";
  Format.printf "done.@."
