(* Tests for the experiment layer: scenario construction and the
   structural/shape properties of each experiment driver. *)

open Tp_core

let haswell = Tp_hw.Platform.haswell
let sabre = Tp_hw.Platform.sabre

let test_scenario_configs () =
  let open Tp_kernel in
  let raw = Scenario.config Scenario.Raw haswell in
  Alcotest.(check bool) "raw has nothing on" true
    ((not raw.Config.colour_user) && (not raw.Config.flush_l1)
    && raw.Config.pad_cycles = 0);
  let prot = Scenario.config Scenario.Protected haswell in
  Alcotest.(check bool) "protected full set" true
    (prot.Config.colour_user && prot.Config.clone_kernel && prot.Config.flush_l1
   && prot.Config.flush_tlb && prot.Config.flush_bp && prot.Config.partition_irqs
   && prot.Config.prefetch_shared && prot.Config.pad_cycles > 0);
  let ff = Scenario.config Scenario.Full_flush haswell in
  Alcotest.(check bool) "full flush: flush everything, no colouring" true
    (ff.Config.flush_llc && ff.Config.disable_prefetcher
    && (not ff.Config.colour_user)
    && not ff.Config.clone_kernel);
  let co = Scenario.config Scenario.Coloured_only haswell in
  Alcotest.(check bool) "coloured-only: colours but shared kernel" true
    (co.Config.colour_user && not co.Config.clone_kernel);
  let nopad = Scenario.config Scenario.Protected_no_pad haswell in
  Alcotest.(check int) "no-pad ablation" 0 nopad.Config.pad_cycles

let test_scenario_boot_shapes () =
  let b = Scenario.boot ~domains:3 Scenario.Protected sabre in
  Alcotest.(check int) "three domains" 3 (Array.length b.Tp_kernel.Boot.domains);
  (* All pairwise disjoint colours. *)
  let open Tp_kernel in
  Array.iteri
    (fun i di ->
      Array.iteri
        (fun j dj ->
          if i < j then
            Alcotest.(check bool) "pairwise disjoint" true
              (Colour.disjoint di.Boot.dom_colours dj.Boot.dom_colours))
        b.Boot.domains)
    b.Boot.domains

let test_quality_parsing () =
  Alcotest.(check bool) "quick" true (Quality.of_string "quick" = Some Quality.Quick);
  Alcotest.(check bool) "full" true (Quality.of_string "full" = Some Quality.Full);
  Alcotest.(check bool) "junk" true (Quality.of_string "junk" = None);
  Alcotest.(check bool) "full > quick samples" true
    (Quality.samples Quality.Full > Quality.samples Quality.Quick)

let test_table2_shape () =
  let r = Exp_table2.run haswell in
  Alcotest.(check int) "two rows" 2 (List.length r.Exp_table2.rows);
  match r.Exp_table2.rows with
  | [ l1; full ] ->
      Alcotest.(check bool) "all costs positive" true
        (l1.Exp_table2.direct_us > 0.0 && full.Exp_table2.direct_us > 0.0);
      (* The paper's central cost comparison: a full flush is far more
         expensive than an L1-only flush, directly and indirectly. *)
      Alcotest.(check bool) "full >> L1 direct" true
        (full.Exp_table2.direct_us > 4.0 *. l1.Exp_table2.direct_us);
      Alcotest.(check bool) "full total >> L1 total" true
        (full.Exp_table2.total_us > 4.0 *. l1.Exp_table2.total_us)
  | _ -> Alcotest.fail "expected exactly two rows"

let test_table5_shape () =
  let r = Exp_table5.run Quality.Quick sabre in
  Alcotest.(check int) "four variants" 4 (List.length r.Exp_table5.rows);
  let find v =
    List.find (fun row -> row.Exp_table5.variant = v) r.Exp_table5.rows
  in
  Alcotest.(check (float 1e-9)) "original is the baseline" 0.0
    (find "original").Exp_table5.slowdown_pct;
  (* The paper's Arm result: colour-ready IPC is significantly more
     expensive (TLB pressure from non-global kernel mappings). *)
  Alcotest.(check bool) "Arm colour-ready slowdown > 5%" true
    ((find "colour-ready").Exp_table5.slowdown_pct > 5.0);
  (* x86 does not pay this penalty (large associative TLBs). *)
  let rx = Exp_table5.run Quality.Quick haswell in
  let find_x v =
    List.find (fun row -> row.Exp_table5.variant = v) rx.Exp_table5.rows
  in
  Alcotest.(check bool) "x86 colour-ready cheap (< 3%)" true
    (Float.abs (find_x "colour-ready").Exp_table5.slowdown_pct < 3.0)

let test_armv8_prediction () =
  (* §5.4.1: "Arm v8 cores have 4-way associativity, so we expect this
     overhead to be significantly reduced on the more recent
     architecture version." *)
  let overhead p =
    let r = Exp_table5.run Quality.Quick p in
    (List.find (fun row -> row.Exp_table5.variant = "colour-ready")
       r.Exp_table5.rows)
      .Exp_table5.slowdown_pct
  in
  let v7 = overhead sabre in
  let v8 = overhead Tp_hw.Platform.armv8 in
  Alcotest.(check bool)
    (Printf.sprintf "v8 colour-ready overhead (%.1f%%) << v7 (%.1f%%)" v8 v7)
    true
    (v8 < v7 /. 3.0)

let test_table6_shape () =
  let r = Exp_table6.run Quality.Quick haswell in
  let row m = List.find (fun x -> x.Exp_table6.mode = m) r.Exp_table6.rows in
  let avg m =
    let vs = List.map snd (row m).Exp_table6.us_by_workload in
    List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)
  in
  Alcotest.(check bool) "raw is sub-microsecond-ish" true (avg "Raw" < 2.0);
  Alcotest.(check bool) "protected well below full flush" true
    (avg "Protected" *. 4.0 < avg "Full flush");
  Alcotest.(check bool) "protected costs real time" true (avg "Protected" > 1.0)

let test_table7_shape () =
  let r = Exp_table7.run Quality.Quick haswell in
  Alcotest.(check bool) "destroy much cheaper than clone" true
    (r.Exp_table7.destroy_us *. 10.0 < r.Exp_table7.clone_us);
  Alcotest.(check bool) "clone much cheaper than fork+exec" true
    (r.Exp_table7.clone_us *. 2.0 < r.Exp_table7.fork_exec_us)

let test_fig7_cloning_is_cheap () =
  let r =
    Exp_fig7.run_fig7 ~workloads:[ "waternsquared"; "raytrace" ] Quality.Quick
      ~seed:3 haswell
  in
  List.iter
    (fun (row : Exp_fig7.fig7_row) ->
      Alcotest.(check bool)
        (row.Exp_fig7.workload ^ ": 100% clone within 1.5% of baseline")
        true
        (Float.abs row.Exp_fig7.clone_100 < 1.5))
    r.Exp_fig7.rows;
  (* raytrace must hurt more at 50% than at 75%. *)
  let rt =
    List.find (fun (x : Exp_fig7.fig7_row) -> x.Exp_fig7.workload = "raytrace")
      r.Exp_fig7.rows
  in
  Alcotest.(check bool) "more colours, less pain" true
    (rt.Exp_fig7.base_50 > rt.Exp_fig7.base_75)

let test_table8_pad_costs_more () =
  let r =
    Exp_fig7.run_table8 ~workloads:[ "lu"; "radix" ] Quality.Quick ~seed:3
      haswell
  in
  List.iter
    (fun (row : Exp_fig7.table8_row) ->
      Alcotest.(check bool)
        (row.Exp_fig7.workload ^ ": padding adds overhead")
        true
        (row.Exp_fig7.pad_pct > row.Exp_fig7.no_pad_pct))
    r.Exp_fig7.rows

let test_calibrate () =
  let c = Calibrate.switch_pad ~trials_per_workload:8 haswell in
  Alcotest.(check bool) "worst positive" true (c.Calibrate.worst_observed_cycles > 0);
  Alcotest.(check bool) "pad above worst" true
    (c.Calibrate.pad_cycles > c.Calibrate.worst_observed_cycles);
  Alcotest.(check bool) "validates on a fresh system" true
    (Calibrate.covers c haswell ~trials:5)

let test_calibrated_pad_closes_flush_channel () =
  let p = haswell in
  let c = Calibrate.switch_pad ~trials_per_workload:8 p in
  let b = Scenario.boot Scenario.Protected_no_pad p in
  Array.iter
    (fun dom ->
      Tp_kernel.Clone.set_pad b.Tp_kernel.Boot.sys
        ~image:dom.Tp_kernel.Boot.dom_kernel_cap ~cycles:c.Calibrate.pad_cycles)
    b.Tp_kernel.Boot.domains;
  let sender, receiver =
    Tp_attacks.Flush_chan.prepare Tp_attacks.Flush_chan.Offline b
  in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = 250;
      symbols = Tp_attacks.Flush_chan.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:31 in
  let r = Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng in
  Alcotest.(check bool) "calibrated pad closes the channel" true
    (r.Tp_channel.Leakage.verdict <> Tp_channel.Leakage.Leak)

let test_mls_policy () =
  (* §4.3's Bell-LaPadula example: High→Low (forbidden) closed by the
     High kernel's pad; Low→High (authorised) open and unpaid-for. *)
  let r = Mls.demo ~samples:300 ~seed:9 haswell in
  Alcotest.(check bool) "forbidden flow closed" true
    (r.Mls.high_to_low.Tp_channel.Leakage.verdict <> Tp_channel.Leakage.Leak);
  Alcotest.(check bool) "authorised flow flows" true
    (r.Mls.low_to_high.Tp_channel.Leakage.verdict = Tp_channel.Leakage.Leak)

let test_mls_padded_fraction () =
  Alcotest.(check (float 1e-9)) "2-level: half pad" 0.5
    (Mls.padded_fraction ~labels:[| 0; 1 |]);
  Alcotest.(check (float 1e-9)) "uniform: nobody pads" 0.0
    (Mls.padded_fraction ~labels:[| 3; 3; 3 |]);
  Alcotest.(check (float 1e-9)) "3 levels: two thirds pad" (2.0 /. 3.0)
    (Mls.padded_fraction ~labels:[| 0; 1; 2 |])

let test_fig4_driver () =
  let r = Exp_fig4.run Quality.Quick ~seed:21 haswell in
  Alcotest.(check bool) "raw recovery high" true (r.Exp_fig4.raw_recovery > 0.9);
  match r.Exp_fig4.protected_trace with
  | None -> ()
  | Some t ->
      Alcotest.(check bool) "protected sees nothing" false
        (Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity)

let suite =
  [
    Alcotest.test_case "scenario configs" `Quick test_scenario_configs;
    Alcotest.test_case "scenario boot shapes" `Quick test_scenario_boot_shapes;
    Alcotest.test_case "quality parsing" `Quick test_quality_parsing;
    Alcotest.test_case "table2 shape" `Quick test_table2_shape;
    Alcotest.test_case "table5 shape" `Quick test_table5_shape;
    Alcotest.test_case "armv8 TLB prediction (5.4.1)" `Quick test_armv8_prediction;
    Alcotest.test_case "table6 shape" `Slow test_table6_shape;
    Alcotest.test_case "table7 shape" `Quick test_table7_shape;
    Alcotest.test_case "fig7 cloning cheap" `Slow test_fig7_cloning_is_cheap;
    Alcotest.test_case "table8 pad costs more" `Slow test_table8_pad_costs_more;
    Alcotest.test_case "calibrate pad" `Slow test_calibrate;
    Alcotest.test_case "calibrated pad closes channel" `Slow
      test_calibrated_pad_closes_flush_channel;
    Alcotest.test_case "mls policy (4.3)" `Slow test_mls_policy;
    Alcotest.test_case "mls padded fraction" `Quick test_mls_padded_fraction;
    Alcotest.test_case "fig4 driver" `Quick test_fig4_driver;
  ]
