(* Tests for Tp_util: PRNG determinism and distribution, statistics,
   histogram, table rendering. *)

open Tp_util

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  (* The split stream must not simply equal the parent's continuation. *)
  let xs = Array.init 16 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split differs" true (xs <> ys)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [lo,hi]" true (v >= -5 && v <= 5)
  done

let test_rng_float_range () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:6 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian r ~mu:3.0 ~sigma:2.0) in
  let m = Stats.mean xs and s = Stats.std xs in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (m -. 3.0) < 0.1);
  Alcotest.(check bool) "std ~ 2" true (Float.abs (s -. 2.0) < 0.1)

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:8 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_rng_permutation () =
  let r = Rng.create ~seed:9 in
  let p = Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 Fun.id) sorted

let test_stats_mean_var () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean a);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.variance a);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.sum a)

let test_stats_singleton () =
  Alcotest.(check (float 1e-9)) "var of singleton" 0.0 (Stats.variance [| 5.0 |]);
  Alcotest.(check (float 1e-9)) "median" 5.0 (Stats.median [| 5.0 |])

let test_stats_median_even () =
  Alcotest.(check (float 1e-9)) "median even" 2.5
    (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let a = Array.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile a 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile a 100.0);
  Alcotest.(check (float 1e-9)) "p25" 25.0 (Stats.percentile a 25.0)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stats_does_not_mutate () =
  let a = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median a);
  ignore (Stats.percentile a 50.0);
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] a

let test_histogram_counts () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; -3.0; 42.0 ];
  Alcotest.(check int) "bin 0 (incl clamped low)" 2 (Histogram.count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "bin 9 (incl clamped high)" 2 (Histogram.count h 9);
  Alcotest.(check int) "total" 6 (Histogram.total h)

let test_histogram_bin_center () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Alcotest.(check (float 1e-9)) "center of bin 0" 0.5 (Histogram.bin_center h 0)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_table_renders () =
  let t = Table.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_sep t;
  Table.add_row t [ "333" ];
  let s = Format.asprintf "%a" Table.pp t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains 333" true (contains_substring s "333")

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (a, (p1, p2)) ->
      QCheck.assume (Array.length a > 0);
      let lo = Stdlib.min p1 p2 and hi = Stdlib.max p1 p2 in
      Tp_util.Stats.percentile a lo <= Tp_util.Stats.percentile a hi +. 1e-9)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun a ->
      QCheck.assume (Array.length a > 0);
      let m = Tp_util.Stats.mean a in
      m >= Tp_util.Stats.min a -. 1e-9 && m <= Tp_util.Stats.max a +. 1e-9)

let qcheck_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (array small_int))
    (fun (seed, a) ->
      let b = Array.copy a in
      Tp_util.Rng.shuffle (Tp_util.Rng.create ~seed) b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
    Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
    Alcotest.test_case "stats singleton" `Quick test_stats_singleton;
    Alcotest.test_case "stats median even" `Quick test_stats_median_even;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats pure" `Quick test_stats_does_not_mutate;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram centers" `Quick test_histogram_bin_center;
    Alcotest.test_case "table renders" `Quick test_table_renders;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
    QCheck_alcotest.to_alcotest qcheck_mean_bounds;
    QCheck_alcotest.to_alcotest qcheck_shuffle_preserves_multiset;
  ]
