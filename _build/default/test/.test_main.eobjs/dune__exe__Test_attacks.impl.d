test/test_attacks.ml: Alcotest Array Boot Config Fun List Scenario System Tp_attacks Tp_channel Tp_core Tp_hw Tp_kernel Tp_util Uctx
