test/test_workloads.ml: Alcotest Array Boot Config Exec List Option Printf System Tp_hw Tp_kernel Tp_util Tp_workloads
