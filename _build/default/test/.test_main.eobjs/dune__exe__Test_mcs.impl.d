test/test_mcs.ml: Alcotest Array Boot Config Exec List Objects Printf Retype System Tp_attacks Tp_channel Tp_core Tp_hw Tp_kernel Tp_util Types Uctx
