test/test_invariants.ml: Array Boot Capability Clone Colour Config Exec Irq List Objects Printf QCheck QCheck_alcotest Retype Sched String System Tp_hw Tp_kernel Types
