test/test_hw.ml: Alcotest Bhb Btb Cache Defs Dram Gen Hashtbl Interconnect List Machine Platform Prefetcher QCheck QCheck_alcotest Tlb Tp_hw
