test/test_extensions.ml: Alcotest Array Audit Boot Capability Clone Colour Config Domain_switch Exec Hashtbl Layout List Objects Phys Printf Retype Sched Syscalls System Tp_hw Tp_kernel Types Uctx
