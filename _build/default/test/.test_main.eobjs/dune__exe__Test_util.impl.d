test/test_util.ml: Alcotest Array Float Format Fun Gen Histogram List QCheck QCheck_alcotest Rng Stats Stdlib String Table Tp_util
