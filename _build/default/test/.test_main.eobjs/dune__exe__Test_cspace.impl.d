test/test_cspace.ml: Alcotest Array Boot Capability Clone Config Cspace Objects Retype Tp_hw Tp_kernel Types
