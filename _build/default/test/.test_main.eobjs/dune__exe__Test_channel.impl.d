test/test_channel.ml: Alcotest Array Capacity Float Gen Kde Leakage List Matrix Mi Printf QCheck QCheck_alcotest Tp_channel Tp_util
