(* Tests for the SPLASH-2-signature workloads and their use in the
   performance experiments. *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

let test_all_workloads_present () =
  Alcotest.(check int) "eleven programs (volrend omitted)" 11
    (List.length Tp_workloads.Splash.all);
  List.iter
    (fun w ->
      Alcotest.(check bool) "ws positive" true (w.Tp_workloads.Splash.ws_kib > 0);
      Alcotest.(check bool) "write ratio sane" true
        (w.Tp_workloads.Splash.write_ratio >= 0.0
        && w.Tp_workloads.Splash.write_ratio <= 1.0))
    Tp_workloads.Splash.all

let test_by_name () =
  Alcotest.(check bool) "raytrace found" true
    (Tp_workloads.Splash.by_name "raytrace" <> None);
  Alcotest.(check bool) "volrend absent" true
    (Tp_workloads.Splash.by_name "volrend" = None)

let boot_one () =
  Boot.boot ~platform:haswell ~config:Config.raw ~domains:1 ()

let test_run_alone_completes () =
  let b = boot_one () in
  let w = Option.get (Tp_workloads.Splash.by_name "fft") in
  let rng = Tp_util.Rng.create ~seed:1 in
  let cycles =
    Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w ~accesses:20_000 ~rng
  in
  Alcotest.(check bool) "positive cycle count" true (cycles > 0);
  (* Sanity: 20k memory accesses cannot be faster than an L1 hit each. *)
  Alcotest.(check bool) "at least L1-hit speed" true (cycles > 20_000 * 4)

let test_accesses_stay_in_span () =
  (* The body must never touch outside its buffer: an out-of-span
     access would fault on the unmapped page. *)
  let b = boot_one () in
  let w = Option.get (Tp_workloads.Splash.by_name "barnes") in
  let rng = Tp_util.Rng.create ~seed:2 in
  let cycles =
    Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w ~accesses:20_000 ~rng
  in
  Alcotest.(check bool) "no fault" true (cycles > 0)

let test_colouring_halves_l2_reach () =
  (* With 50% of colours, the workload's lines can occupy at most half
     the physically-indexed L2. *)
  let cfg = { Config.raw with Config.colour_user = true } in
  let b = Boot.boot ~colour_percent:50 ~platform:haswell ~config:cfg ~domains:1 () in
  let w = Option.get (Tp_workloads.Splash.by_name "raytrace") in
  let rng = Tp_util.Rng.create ~seed:3 in
  ignore (Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w ~accesses:60_000 ~rng);
  let l2 = Option.get (Tp_hw.Machine.l2 (System.machine b.Boot.sys) ~core:0) in
  let cap = Tp_hw.Cache.capacity_lines l2 in
  Alcotest.(check bool) "at most ~half the L2 occupied" true
    (Tp_hw.Cache.valid_lines l2 <= (cap / 2) + 64)

let test_cache_hungry_workload_slows_under_colouring () =
  let w = Option.get (Tp_workloads.Splash.by_name "raytrace") in
  let run config cp =
    let b = Boot.boot ~colour_percent:cp ~platform:haswell ~config ~domains:1 () in
    let rng = Tp_util.Rng.create ~seed:4 in
    Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w ~accesses:80_000 ~rng
  in
  let base = run Config.raw 100 in
  let halved = run { Config.raw with Config.colour_user = true } 50 in
  Alcotest.(check bool)
    (Printf.sprintf "50%% colours slower (%d vs %d)" halved base)
    true
    (halved > base)

let test_fitting_workload_insensitive () =
  (* On the Sabre, waternsquared's 192 KiB working set fits even half
     the 1 MiB LLC: colouring must cost (almost) nothing.  (On the
     Haswell the colouring grain is the small 256 KiB L2, which no
     modelled working set fits at 50%.) *)
  let w = Option.get (Tp_workloads.Splash.by_name "waternsquared") in
  let run config cp =
    let b =
      Boot.boot ~colour_percent:cp ~platform:Tp_hw.Platform.sabre ~config
        ~domains:1 ()
    in
    let rng = Tp_util.Rng.create ~seed:5 in
    Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w ~accesses:80_000 ~rng
  in
  let base = run Config.raw 100 in
  let halved = run { Config.raw with Config.colour_user = true } 50 in
  let slowdown = float_of_int halved /. float_of_int base -. 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "slowdown %.3f%% < 2%%" (100. *. slowdown))
    true
    (slowdown < 0.02)

let test_body_counts_accesses () =
  let b = boot_one () in
  let w = Option.get (Tp_workloads.Splash.by_name "lu") in
  let pages = w.Tp_workloads.Splash.ws_kib * 1024 / 4096 in
  let buf = Boot.alloc_pages b b.Boot.domains.(0) ~pages in
  let acc = ref 0 in
  let rng = Tp_util.Rng.create ~seed:6 in
  ignore
    (Boot.spawn b b.Boot.domains.(0)
       (Tp_workloads.Splash.body w ~buf ~rng ~accesses:acc ()));
  Exec.run_slices b.Boot.sys ~core:0 ~slice_cycles:100_000 ~slices:2 ();
  Alcotest.(check bool) "counted accesses" true (!acc > 100)

let suite =
  [
    Alcotest.test_case "all workloads present" `Quick test_all_workloads_present;
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "run_alone completes" `Quick test_run_alone_completes;
    Alcotest.test_case "accesses stay in span" `Quick test_accesses_stay_in_span;
    Alcotest.test_case "colouring halves L2 reach" `Quick
      test_colouring_halves_l2_reach;
    Alcotest.test_case "cache-hungry slows under colouring" `Slow
      test_cache_hungry_workload_slows_under_colouring;
    Alcotest.test_case "fitting workload insensitive" `Slow
      test_fitting_workload_insensitive;
    Alcotest.test_case "body counts accesses" `Quick test_body_counts_accesses;
  ]
