(* Model-checking-flavoured property tests: random sequences of
   kernel operations must preserve the system's global invariants.

   These are the invariants the seL4 proofs establish statically; here
   they are checked dynamically over randomised traces:

   - frame conservation: every physical frame is accounted for exactly
     once (free in some Untyped, backing an object, or boot-reserved);
   - the initial kernel and its idle thread always survive (§4.4);
   - active kernel images are disjoint in their backing frames;
   - coloured pools never hold a frame of a foreign colour;
   - destroyed kernels hold no IRQ associations;
   - the scheduler never queues a suspended or inactive thread. *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

type op =
  | Op_clone
  | Op_destroy_last
  | Op_retype_tcb
  | Op_retype_notification
  | Op_revoke_pool
  | Op_spawn
  | Op_run_slices
  | Op_set_int of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Op_clone);
        (3, return Op_destroy_last);
        (2, return Op_retype_tcb);
        (2, return Op_retype_notification);
        (1, return Op_revoke_pool);
        (3, return Op_spawn);
        (2, return Op_run_slices);
        (1, map (fun i -> Op_set_int (1 + (i mod 8))) small_nat);
      ])

let pp_op = function
  | Op_clone -> "clone"
  | Op_destroy_last -> "destroy"
  | Op_retype_tcb -> "retype-tcb"
  | Op_retype_notification -> "retype-ntfn"
  | Op_revoke_pool -> "revoke-pool"
  | Op_spawn -> "spawn"
  | Op_run_slices -> "run"
  | Op_set_int i -> Printf.sprintf "set-int %d" i

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 25) op_gen)

(* Walk the CDT from the root untyped and the master cap, summing the
   frames owned by live objects. *)
let rec frames_of_cap_tree cap =
  if not (Capability.is_valid cap) then 0
  else begin
    let own =
      if Objects.is_owner cap then List.length (Types.obj_frames cap.Types.target)
      else 0
    in
    List.fold_left
      (fun acc child -> acc + frames_of_cap_tree child)
      own cap.Types.children
  end

let check_invariants (b : Boot.booted) =
  let sys = b.Boot.sys in
  (* Initial kernel alive with an idle thread. *)
  let ik = System.initial_kernel sys in
  assert (ik.Types.ki_state = Types.Ki_active);
  assert (ik.Types.ki_idle <> None);
  (* Active kernels have pairwise-disjoint frames. *)
  let kernels = System.kernels sys in
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj ->
          if i < j then begin
            let si =
              List.sort_uniq compare (Array.to_list ki.Types.ki_frames)
            in
            let sj =
              List.sort_uniq compare (Array.to_list kj.Types.ki_frames)
            in
            assert (List.for_all (fun f -> not (List.mem f sj)) si)
          end)
        kernels)
    kernels;
  (* Coloured pools hold only their own colours. *)
  Array.iter
    (fun dom ->
      let u = Retype.the_untyped dom.Boot.dom_pool in
      List.iter
        (fun f ->
          assert
            (Colour.mem dom.Boot.dom_colours
               (Colour.colour_of_frame ~n_colours:(System.n_colours sys) f)))
        u.Types.u_free)
    b.Boot.domains;
  (* Destroyed kernels hold no IRQs; live IRQ associations point at
     active kernels. *)
  for irq = 1 to Irq.n_irqs - 1 do
    match (Irq.handler (System.irq sys) irq).Types.ih_kernel with
    | Some k -> assert (k.Types.ki_state = Types.Ki_active)
    | None -> ()
  done;
  (* Scheduler queues contain only ready threads. *)
  List.iter
    (fun tcb ->
      if Sched.is_queued (System.sched sys) ~core:0 tcb then
        assert (
          tcb.Types.t_state = Types.Ts_ready
          || tcb.Types.t_state = Types.Ts_running))
    (System.all_tcbs sys)

(* Frame conservation: free(phys) stayed 0 after boot (all frames went
   to the root untyped), so the cap forest must account for everything
   that is not boot-reserved. *)
let check_frame_conservation (b : Boot.booted) ~total_user_frames =
  let tree = frames_of_cap_tree b.Boot.root in
  let master_kernels =
    List.fold_left
      (fun acc c -> acc + frames_of_cap_tree c)
      0 b.Boot.master.Types.children
  in
  ignore master_kernels;
  (* Kernel images are backed by Kernel_Memory frames that stay owned
     by the kmem object in the pool's tree, so the root tree alone must
     conserve the user frame count. *)
  assert (tree = total_user_frames)

let apply_op b op =
  let sys = b.Boot.sys in
  let dom = b.Boot.domains.(0) in
  try
    match op with
    | Op_clone ->
        let kmem = Retype.retype_kernel_memory dom.Boot.dom_pool ~platform:haswell in
        ignore (Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem)
    | Op_destroy_last -> begin
        (* Destroy the most recently cloned kernel, if any. *)
        match
          List.find_opt
            (fun c ->
              Capability.is_valid c
              &&
              match c.Types.target with
              | Types.Obj_kernel_image ki -> ki.Types.ki_state = Types.Ki_active
              | _ -> false)
            b.Boot.master.Types.children
        with
        | Some cap -> Clone.destroy sys ~core:0 cap
        | None -> ()
      end
    | Op_retype_tcb -> ignore (Retype.retype_tcb dom.Boot.dom_pool ~core:0 ~prio:10)
    | Op_retype_notification -> ignore (Retype.retype_notification dom.Boot.dom_pool)
    | Op_revoke_pool -> Objects.revoke sys ~core:0 b.Boot.domains.(1).Boot.dom_pool
    | Op_spawn -> ignore (Boot.spawn b dom (fun _ -> ()))
    | Op_run_slices -> Exec.run_slices sys ~core:0 ~slice_cycles:50_000 ~slices:2 ()
    | Op_set_int irq -> Clone.set_int sys ~image:dom.Boot.dom_kernel_cap ~irq
  with Types.Kernel_error _ -> (* rejected operations are fine *) ()

let qcheck_invariants =
  QCheck.Test.make ~name:"random op sequences preserve kernel invariants"
    ~count:40 ops_arbitrary (fun ops ->
      let b =
        Boot.boot ~platform:haswell ~config:(Config.protected_ haswell)
          ~domains:2 ()
      in
      List.iter
        (fun op ->
          apply_op b op;
          check_invariants b)
        ops;
      true)

let qcheck_frame_conservation =
  QCheck.Test.make ~name:"random op sequences conserve frames" ~count:25
    ops_arbitrary (fun ops ->
      let b =
        Boot.boot ~platform:haswell ~config:(Config.protected_ haswell)
          ~domains:2 ()
      in
      let total =
        frames_of_cap_tree b.Boot.root
      in
      List.iter (fun op -> apply_op b op) ops;
      check_frame_conservation b ~total_user_frames:total;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_invariants;
    QCheck_alcotest.to_alcotest qcheck_frame_conservation;
  ]
