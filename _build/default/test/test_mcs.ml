(* Tests for scheduling contexts (MCS, Lyons et al. 2018) and their
   composition with time protection — the paper's §8 future work:
   "combining it with the recently added temporal integrity
   mechanisms". *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

(* Raw config for the pure scheduling tests: protected-mode padding
   (~200k cycles per switch) would dwarf the budgets under test. *)
let boot () = Boot.boot ~platform:haswell ~config:Config.raw ~domains:2 ()

let mk_sc b dom ~budget ~period =
  let cap = Retype.retype_sched_context b.Boot.domains.(dom).Boot.dom_pool ~budget ~period in
  match cap.Types.target with
  | Types.Obj_sched_context sc -> sc
  | _ -> assert false

(* A body that spins, counting the cycles it actually receives. *)
let spinner counter ctx =
  try
    while true do
      Uctx.compute ctx 100;
      counter := !counter + 100
    done
  with Uctx.Preempted -> ()

let test_budget_caps_cpu_time () =
  let b = boot () in
  let sys = b.Boot.sys in
  let got = ref 0 in
  let tcb = Boot.spawn b b.Boot.domains.(0) (spinner got) in
  (* 30% budget: 30k cycles per 100k period. *)
  let sc = mk_sc b 0 ~budget:30_000 ~period:100_000 in
  Exec.bind_sched_context tcb sc;
  let t0 = System.now sys ~core:0 in
  Exec.run sys ~core:0 ~slice_cycles:50_000 ~until:(t0 + 1_000_000) ();
  let share = float_of_int !got /. 1_000_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "CPU share %.2f ~ 0.30 budget" share)
    true
    (share > 0.15 && share < 0.40)

let test_unbudgeted_thread_gets_the_rest () =
  (* MCS's temporal-integrity point: a budgeted high-priority thread
     cannot starve a lower-priority one. *)
  let b = boot () in
  let sys = b.Boot.sys in
  let hi_got = ref 0 and lo_got = ref 0 in
  let hi = Boot.spawn b b.Boot.domains.(0) ~prio:200 (spinner hi_got) in
  ignore (Boot.spawn b b.Boot.domains.(1) ~prio:10 (spinner lo_got));
  let sc = mk_sc b 0 ~budget:25_000 ~period:100_000 in
  Exec.bind_sched_context hi sc;
  let t0 = System.now sys ~core:0 in
  Exec.run sys ~core:0 ~slice_cycles:50_000 ~until:(t0 + 1_500_000) ();
  Alcotest.(check bool) "high-prio thread ran" true (!hi_got > 0);
  Alcotest.(check bool)
    (Printf.sprintf "low-prio not starved (hi %d, lo %d)" !hi_got !lo_got)
    true
    (!lo_got > !hi_got)

let test_without_sc_higher_prio_starves () =
  (* Control: without a scheduling context the high-priority spinner
     monopolises the core — the situation MCS exists to prevent. *)
  let b = boot () in
  let sys = b.Boot.sys in
  let hi_got = ref 0 and lo_got = ref 0 in
  ignore (Boot.spawn b b.Boot.domains.(0) ~prio:200 (spinner hi_got));
  ignore (Boot.spawn b b.Boot.domains.(1) ~prio:10 (spinner lo_got));
  let t0 = System.now sys ~core:0 in
  Exec.run sys ~core:0 ~slice_cycles:50_000 ~until:(t0 + 1_000_000) ();
  Alcotest.(check int) "low-prio starved" 0 !lo_got

let test_replenishment_resumes () =
  let b = boot () in
  let sys = b.Boot.sys in
  let got = ref 0 in
  let tcb = Boot.spawn b b.Boot.domains.(0) (spinner got) in
  let sc = mk_sc b 0 ~budget:20_000 ~period:60_000 in
  Exec.bind_sched_context tcb sc;
  let t0 = System.now sys ~core:0 in
  Exec.run sys ~core:0 ~slice_cycles:30_000 ~until:(t0 + 200_000) ();
  let first_window = !got in
  Exec.run sys ~core:0 ~slice_cycles:30_000 ~until:(t0 + 600_000) ();
  Alcotest.(check bool) "kept receiving budget after replenishments" true
    (!got > first_window)

let test_sc_destruction_unbinds () =
  let b = boot () in
  let cap =
    Retype.retype_sched_context b.Boot.domains.(0).Boot.dom_pool ~budget:10_000
      ~period:50_000
  in
  let sc =
    match cap.Types.target with Types.Obj_sched_context s -> s | _ -> assert false
  in
  let tcb = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  Exec.bind_sched_context tcb sc;
  Objects.delete b.Boot.sys ~core:0 cap;
  Alcotest.(check bool) "thread unbound on destruction" true (tcb.Types.t_sc = None)

let test_mcs_composes_with_time_protection () =
  (* §8: budgets shorten slices but every boundary still runs the
     protected switch — so the flush channel stays closed when the
     sender runs under a scheduling context. *)
  let b = Tp_core.Scenario.boot Tp_core.Scenario.Protected haswell in
  let sys = b.Boot.sys in
  let sender0, receiver = Tp_attacks.Flush_chan.prepare Tp_attacks.Flush_chan.Offline b in
  let sender ctx sym = sender0 ctx sym in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 200;
      symbols = Tp_attacks.Flush_chan.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:17 in
  (* Pre-bind a scheduling context to the sender by spawning the pair
     through the harness, then capping domain 0's threads. *)
  let samples =
    let s = Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng in
    (* Cap every domain-0 thread and run a second dataset. *)
    let sc = mk_sc b 0 ~budget:(spec.Tp_attacks.Harness.slice_cycles / 2)
        ~period:spec.Tp_attacks.Harness.slice_cycles in
    List.iter
      (fun t -> Exec.bind_sched_context t sc)
      b.Boot.domains.(0).Boot.dom_threads;
    ignore (System.now sys ~core:0);
    ignore s;
    Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng
  in
  let r = Tp_channel.Leakage.test ~rng samples in
  Alcotest.(check bool) "flush channel closed under MCS + TP" true
    (r.Tp_channel.Leakage.verdict <> Tp_channel.Leakage.Leak)

let suite =
  [
    Alcotest.test_case "budget caps CPU time" `Quick test_budget_caps_cpu_time;
    Alcotest.test_case "budgeted hi-prio cannot starve" `Quick
      test_unbudgeted_thread_gets_the_rest;
    Alcotest.test_case "control: no SC starves" `Quick
      test_without_sc_higher_prio_starves;
    Alcotest.test_case "replenishment resumes" `Quick test_replenishment_resumes;
    Alcotest.test_case "SC destruction unbinds" `Quick test_sc_destruction_unbinds;
    Alcotest.test_case "MCS composes with TP" `Slow
      test_mcs_composes_with_time_protection;
  ]
