(* Tests for CNode/CSpace: guarded address resolution, slot-to-slot
   capability transfer, deletion semantics and CDT interaction. *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

let boot () =
  Boot.boot ~platform:haswell ~config:Config.raw ~domains:1 ()

let expect_error expected f =
  match f () with
  | _ -> Alcotest.fail "expected Kernel_error"
  | exception Types.Kernel_error e ->
      Alcotest.(check string) "error" (Types.error_to_string expected)
        (Types.error_to_string e)

let test_retype_cnode () =
  let b = boot () in
  let cap = Cspace.retype_cnode b.Boot.domains.(0).Boot.dom_pool ~radix:4 () in
  let cn = Cspace.the_cnode cap in
  Alcotest.(check int) "16 slots" 16 (Array.length cn.Types.cn_slots);
  Alcotest.(check bool) "all empty" true
    (Array.for_all (fun s -> s = None) cn.Types.cn_slots)

let test_single_level_resolution () =
  let b = boot () in
  let root = Cspace.the_cnode (Cspace.retype_cnode b.Boot.domains.(0).Boot.dom_pool ~radix:4 ()) in
  let node, i = Cspace.resolve root ~addr:0xA ~depth:4 in
  Alcotest.(check bool) "same node" true (node.Types.cn_id = root.Types.cn_id);
  Alcotest.(check int) "slot 10" 10 i

let test_guard_match_and_mismatch () =
  let b = boot () in
  let root =
    Cspace.the_cnode
      (Cspace.retype_cnode b.Boot.domains.(0).Boot.dom_pool ~radix:4 ~guard:0x5
         ~guard_bits:3 ())
  in
  (* Address = guard(3 bits) @ index(4 bits). *)
  let _, i = Cspace.resolve root ~addr:((0x5 lsl 4) lor 0x3) ~depth:7 in
  Alcotest.(check int) "slot 3 under guard" 3 i;
  expect_error Types.Invalid_address (fun () ->
      Cspace.resolve root ~addr:((0x4 lsl 4) lor 0x3) ~depth:7)

let test_two_level_walk () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let root_cap = Cspace.retype_cnode pool ~radix:4 () in
  let leaf_cap = Cspace.retype_cnode pool ~radix:4 () in
  let root = Cspace.the_cnode root_cap in
  let leaf = Cspace.the_cnode leaf_cap in
  (* Install the leaf CNode capability in root slot 2. *)
  Cspace.insert root ~addr:2 ~depth:4 leaf_cap;
  (* Address: root index 2 (4 bits) then leaf index 9 (4 bits). *)
  let node, i = Cspace.resolve root ~addr:((2 lsl 4) lor 9) ~depth:8 in
  Alcotest.(check bool) "landed in leaf" true (node.Types.cn_id = leaf.Types.cn_id);
  Alcotest.(check int) "slot 9" 9 i;
  (* Walking through an empty interior slot fails. *)
  expect_error Types.Invalid_address (fun () ->
      Cspace.resolve root ~addr:((3 lsl 4) lor 9) ~depth:8)

let test_depth_errors () =
  let b = boot () in
  let root = Cspace.the_cnode (Cspace.retype_cnode b.Boot.domains.(0).Boot.dom_pool ~radix:4 ()) in
  expect_error Types.Invalid_address (fun () ->
      Cspace.resolve root ~addr:1 ~depth:2);
  (* Too much depth with a non-CNode in the slot. *)
  let nf_cap = Retype.retype_notification b.Boot.domains.(0).Boot.dom_pool in
  Cspace.insert root ~addr:1 ~depth:4 nf_cap;
  expect_error Types.Invalid_address (fun () ->
      Cspace.resolve root ~addr:(1 lsl 4) ~depth:8)

let test_insert_occupied () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let root = Cspace.the_cnode (Cspace.retype_cnode pool ~radix:4 ()) in
  let nf = Retype.retype_notification pool in
  Cspace.insert root ~addr:0 ~depth:4 nf;
  expect_error Types.Slot_occupied (fun () ->
      Cspace.insert root ~addr:0 ~depth:4 nf)

let test_copy_is_cdt_child () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let root = Cspace.the_cnode (Cspace.retype_cnode pool ~radix:4 ()) in
  let nf = Retype.retype_notification pool in
  Cspace.insert root ~addr:0 ~depth:4 nf;
  let child = Cspace.copy ~src:(root, 0) ~dst:(root, 1) () in
  Alcotest.(check bool) "child of source" true
    (match child.Types.parent with Some p -> p == nf | None -> false);
  (* Revoking the original kills the copy. *)
  Objects.revoke b.Boot.sys ~core:0 nf;
  Alcotest.(check bool) "copy revoked" false (Capability.is_valid child)

let test_mint_reduces_rights_and_clone () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let root = Cspace.the_cnode (Cspace.retype_cnode pool ~radix:4 ()) in
  (* Mint the Kernel_Image master into a domain CSpace: the §4.1
     hand-out, clone right stripped. *)
  Cspace.insert root ~addr:0 ~depth:4 b.Boot.master;
  let handed =
    Cspace.mint ~src:(root, 0) ~dst:(root, 1)
      ~rights:{ Types.read = true; write = false; grant = false }
      ()
  in
  Alcotest.(check bool) "clone right stripped" false handed.Types.clone_right;
  Alcotest.(check bool) "rights reduced" true
    (handed.Types.rights.Types.read && not handed.Types.rights.Types.write);
  (* The stripped capability cannot clone. *)
  let kmem = Retype.retype_kernel_memory pool ~platform:haswell in
  expect_error Types.No_clone_right (fun () ->
      Clone.clone b.Boot.sys ~core:0 ~src:handed ~kmem)

let test_move_changes_slot_only () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let root = Cspace.the_cnode (Cspace.retype_cnode pool ~radix:4 ()) in
  let nf = Retype.retype_notification pool in
  Cspace.insert root ~addr:5 ~depth:4 nf;
  Cspace.move ~src:(root, 5) ~dst:(root, 6) ();
  Alcotest.(check bool) "source empty" true (Cspace.slot (root, 5) = None);
  Alcotest.(check bool) "dest holds the same cap" true
    (match Cspace.slot (root, 6) with Some c -> c == nf | None -> false)

let test_delete_slot_destroys () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let free0 = Retype.untyped_free_frames pool in
  let root = Cspace.the_cnode (Cspace.retype_cnode pool ~radix:4 ()) in
  let nf = Retype.retype_notification pool in
  Cspace.insert root ~addr:7 ~depth:4 nf;
  Cspace.delete_slot b.Boot.sys ~core:0 (root, 7);
  Alcotest.(check bool) "slot empty" true (Cspace.slot (root, 7) = None);
  Alcotest.(check bool) "cap invalid" false (Capability.is_valid nf);
  (* The notification's frame flowed back (the CNode still holds its
     own frame). *)
  Alcotest.(check int) "frames: only the CNode's remains out"
    (free0 - 1)
    (Retype.untyped_free_frames pool)

let test_cnode_destruction_kills_contents () =
  let b = boot () in
  let pool = b.Boot.domains.(0).Boot.dom_pool in
  let cn_cap = Cspace.retype_cnode pool ~radix:4 () in
  let root = Cspace.the_cnode cn_cap in
  let nf = Retype.retype_notification pool in
  let copy = Capability.derive nf in
  Cspace.insert root ~addr:3 ~depth:4 copy;
  Objects.delete b.Boot.sys ~core:0 cn_cap;
  Alcotest.(check bool) "stored cap invalidated" false (Capability.is_valid copy);
  Alcotest.(check bool) "original object survives (derived copy died)" true
    (Capability.is_valid nf)

let suite =
  [
    Alcotest.test_case "retype cnode" `Quick test_retype_cnode;
    Alcotest.test_case "single-level resolution" `Quick test_single_level_resolution;
    Alcotest.test_case "guard match/mismatch" `Quick test_guard_match_and_mismatch;
    Alcotest.test_case "two-level walk" `Quick test_two_level_walk;
    Alcotest.test_case "depth errors" `Quick test_depth_errors;
    Alcotest.test_case "insert occupied" `Quick test_insert_occupied;
    Alcotest.test_case "copy is CDT child" `Quick test_copy_is_cdt_child;
    Alcotest.test_case "mint reduces rights+clone" `Quick
      test_mint_reduces_rights_and_clone;
    Alcotest.test_case "move changes slot only" `Quick test_move_changes_slot_only;
    Alcotest.test_case "delete slot destroys" `Quick test_delete_slot_destroys;
    Alcotest.test_case "cnode destruction kills contents" `Quick
      test_cnode_destruction_kills_contents;
  ]
