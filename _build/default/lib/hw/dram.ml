type config = { banks : int; row_bits : int; t_hit : int; t_miss : int }

type t = { cfg : config; open_rows : int array (* -1 = closed *) }

let create cfg =
  assert (Defs.is_pow2 cfg.banks);
  { cfg; open_rows = Array.make cfg.banks (-1) }

(* Memory controllers hash many address bits into the bank selector to
   spread conflicts; consequently page colouring (which constrains only
   the low page-number bits) cannot partition the banks — DRAM rows are
   microarchitectural state outside OS control, like the prefetcher. *)
let bank_of_row cfg row =
  (row lxor (row lsr 3) lxor (row lsr 7)) land (cfg.banks - 1)

let bank_of cfg ~paddr = bank_of_row cfg (paddr lsr cfg.row_bits)

let access t ~paddr =
  let row = paddr lsr t.cfg.row_bits in
  let bank = bank_of_row t.cfg row in
  if t.open_rows.(bank) = row then t.cfg.t_hit
  else begin
    t.open_rows.(bank) <- row;
    t.cfg.t_miss
  end

let close_all t = Array.fill t.open_rows 0 (Array.length t.open_rows) (-1)
