lib/hw/defs.ml: Format
