lib/hw/tlb.ml: Array Defs
