lib/hw/interconnect.mli:
