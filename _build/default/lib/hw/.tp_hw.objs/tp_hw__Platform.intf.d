lib/hw/platform.mli: Bhb Btb Cache Dram Format Tlb
