lib/hw/machine.mli: Bhb Btb Cache Defs Dram Interconnect Platform Prefetcher Tlb
