lib/hw/dram.mli:
