lib/hw/tlb.mli:
