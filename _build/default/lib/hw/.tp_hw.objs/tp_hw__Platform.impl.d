lib/hw/platform.ml: Bhb Btb Cache Dram Format List String Tlb
