lib/hw/cache.ml: Array Defs Format
