lib/hw/btb.ml: Array Defs
