lib/hw/bhb.ml: Array Defs
