lib/hw/prefetcher.ml: Array Defs List
