lib/hw/prefetcher.mli:
