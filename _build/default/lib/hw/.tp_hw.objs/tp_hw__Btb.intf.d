lib/hw/btb.mli:
