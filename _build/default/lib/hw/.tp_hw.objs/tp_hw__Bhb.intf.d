lib/hw/bhb.mli:
