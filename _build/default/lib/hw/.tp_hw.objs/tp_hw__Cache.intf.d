lib/hw/cache.mli: Format
