lib/hw/dram.ml: Array Defs
