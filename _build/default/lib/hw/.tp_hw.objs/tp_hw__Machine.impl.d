lib/hw/machine.ml: Array Bhb Btb Cache Defs Dram Interconnect List Option Platform Prefetcher Tlb
