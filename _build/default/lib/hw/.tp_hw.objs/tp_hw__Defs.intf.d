lib/hw/defs.mli: Format
