lib/hw/interconnect.ml: Array Stdlib
