(** Hardware platform descriptions.

    The two presets encode Table 1 of the paper: the Haswell x86
    evaluation machine (Core i7-4770) and the Arm v7 Sabre (i.MX6Q,
    Cortex A9), including cache/TLB/predictor geometries, latency
    parameters, and the architectural differences that drive the
    evaluation:

    - x86 has a private per-core L2 and a shared L3 (LLC); the OS
      colours by the L2 (8 colours), which implicitly colours the LLC;
    - Arm has no L3: the 1 MiB L2 is the shared last-level cache
      (16 colours);
    - x86 has no selective L1 flush instruction ([has_l1_flush_instr =
      false]), forcing the paper's "manual" flush via cache-sized
      buffers; Arm has DCCISW/ICIALLU;
    - only the x86 core has the aggressive, unflushable stream
      prefetcher responsible for the residual L2 channel. *)

type arch = X86 | Arm

type t = {
  name : string;
  arch : arch;
  cores : int;
  clock_mhz : int;
  line : int;  (** cache line size in bytes *)
  l1d : Cache.geometry;
  l1i : Cache.geometry;
  l2 : Cache.geometry option;  (** private per-core L2 (x86); Arm: none *)
  llc : Cache.geometry;  (** shared last-level cache (x86 L3 / Arm L2) *)
  itlb : Tlb.geometry;
  dtlb : Tlb.geometry;
  l2tlb : Tlb.geometry;
  btb : Btb.geometry;
  bhb : Bhb.geometry;
  lat_l1 : int;  (** L1 hit latency, cycles *)
  lat_l2 : int;  (** private L2 hit latency (x86) *)
  lat_llc : int;  (** shared LLC hit latency *)
  dram : Dram.config;
  mispredict_penalty : int;
  tlb_walk : int;  (** page-table walk cost on L2-TLB miss, cycles *)
  prefetcher_slots : int;  (** 0 = no stream prefetcher modelled *)
  prefetcher_degree : int;
  has_l1_flush_instr : bool;
  mem_bytes : int;  (** physical memory size *)
  kernel_text : int;  (** kernel text+rodata bytes (cloned per image) *)
  kernel_stack : int;  (** kernel stack bytes (cloned) *)
  kernel_replicated : int;  (** replicated global data bytes (cloned) *)
  kernel_shared : int;  (** residual shared static data (§4.1 list) *)
}

val haswell : t
(** Core i7-4770, 4 cores, 3.4 GHz (Table 1, left column). *)

val sabre : t
(** i.MX6Q Sabre, Cortex A9, 4 cores, 0.8 GHz (Table 1, right column). *)

val armv8 : t
(** A Cortex A53-class Arm v8 platform the paper did not yet support
    (§5.4.1).  Its 4-way L2 TLB exists to test the paper's prediction
    that the colour-ready IPC overhead shrinks on v8. *)

val by_name : string -> t option
(** Look up ["haswell"], ["sabre"] or ["armv8"] (case-insensitive). *)

val all : t list

val colours : t -> int
(** Number of page colours available for partitioning: determined by
    the smallest physically-indexed cache the OS must colour (x86: the
    private L2, which implicitly colours the LLC; Arm: the shared L2). *)

val llc_colours : t -> int
(** Colours of the last-level cache alone (relevant for the paper's
    discussion of colouring only the LLC in a cloud scenario). *)

val cycles_to_us : t -> int -> float
(** Convert core cycles to microseconds at the platform clock. *)

val us_to_cycles : t -> float -> int

val pp : Format.formatter -> t -> unit
