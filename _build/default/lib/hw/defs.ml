let page_bits = 12
let page_size = 1 lsl page_bits

type access_kind = Read | Write | Fetch

let pp_access_kind ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"
  | Fetch -> Format.pp_print_string ppf "fetch"

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  assert (is_pow2 n);
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let page_of addr = addr lsr page_bits
let page_offset addr = addr land (page_size - 1)
