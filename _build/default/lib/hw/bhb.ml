type geometry = { history_bits : int; pht_entries : int }

type t = {
  g : geometry;
  pht : int array; (* 2-bit saturating counters, 0..3; >=2 predicts taken *)
  mutable history : int;
}

let create g =
  assert (Defs.is_pow2 g.pht_entries);
  assert (g.history_bits > 0 && g.history_bits < 30);
  { g; pht = Array.make g.pht_entries 1; history = 0 }

type result = Predicted | Mispredicted

let index t addr =
  (t.history lxor (addr lsr 2)) land (t.g.pht_entries - 1)

let branch t ~addr ~taken =
  let i = index t addr in
  let c = t.pht.(i) in
  let predicted_taken = c >= 2 in
  let result = if predicted_taken = taken then Predicted else Mispredicted in
  t.pht.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <-
    ((t.history lsl 1) lor (if taken then 1 else 0))
    land ((1 lsl t.g.history_bits) - 1);
  result

let flush t =
  Array.fill t.pht 0 (Array.length t.pht) 1;
  t.history <- 0
