type core_state = {
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t option;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  l2tlb : Tlb.t;
  btb : Btb.t;
  bhb : Bhb.t;
  prefetcher : Prefetcher.t option;
  mutable cycles : int;
}

type t = {
  platform : Platform.t;
  cores : core_state array;
  llc : Cache.t;
  dram : Dram.t;
  bus : Interconnect.t;
}

(* Flush cost model, calibrated so the Table 2 shapes hold: invalidating
   a line costs a few cycles of tag-walk, writing back a dirty line a
   burst-amortised store.  See EXPERIMENTS.md for the calibration. *)
let inval_cost_per_line = 5
let wb_cost_per_line = 10
let tlb_flush_cost = 200
let bp_flush_cost = 400
let l2_tlb_hit_extra = 7
let prefetch_issue_cost = 1

let create platform =
  let open Platform in
  let mk_core _ =
    {
      l1d = Cache.create platform.l1d;
      l1i = Cache.create platform.l1i;
      l2 = Option.map Cache.create platform.l2;
      itlb = Tlb.create platform.itlb;
      dtlb = Tlb.create platform.dtlb;
      l2tlb = Tlb.create platform.l2tlb;
      btb = Btb.create platform.btb;
      bhb = Bhb.create platform.bhb;
      prefetcher =
        (if platform.prefetcher_slots > 0 then
           Some
             (Prefetcher.create ~slots:platform.prefetcher_slots
                ~degree:platform.prefetcher_degree)
         else None);
      cycles = 0;
    }
  in
  {
    platform;
    cores = Array.init platform.cores mk_core;
    llc = Cache.create platform.llc;
    dram = Dram.create platform.dram;
    (* Memory-bus service rate scaled to the platform: 1.3x the rate of
       a single latency-bound DRAM stream, so one stream fits and two
       concurrent ones contend. *)
    bus =
      (let stream_latency =
         platform.lat_l1 + platform.lat_l2 + platform.lat_llc
         + platform.dram.Dram.t_hit
       in
       Interconnect.create ~cores:platform.cores ~window:(10 * stream_latency)
         ~slots_per_window:13);
  }

let platform t = t.platform
let n_cores t = Array.length t.cores

let core t i =
  assert (i >= 0 && i < Array.length t.cores);
  t.cores.(i)

let cycles t ~core:i = (core t i).cycles
let add_cycles t ~core:i n = (core t i).cycles <- (core t i).cycles + n

(* Invalidate a physical line from every core's private caches; the
   shared LLC is inclusive, so an LLC eviction must purge inner copies.
   For virtually-indexed L1s every alias set would need checking on real
   hardware; our L1 index uses the vaddr, so we conservatively scan all
   L1 sets via the physical tag by probing each possible index page
   offset — in practice user mappings here are vaddr=colour-preserving,
   so invalidating with vaddr=paddr covers the common case and the
   over-approximation only loses a little timing fidelity. *)
let back_invalidate t line_paddr =
  if line_paddr >= 0 then
    Array.iter
      (fun c ->
        Cache.invalidate_line c.l1d ~vaddr:line_paddr ~paddr:line_paddr;
        Cache.invalidate_line c.l1i ~vaddr:line_paddr ~paddr:line_paddr;
        match c.l2 with
        | Some l2 -> Cache.invalidate_line l2 ~vaddr:line_paddr ~paddr:line_paddr
        | None -> ())
      t.cores

(* Access the shared levels (LLC then DRAM) for one physical line;
   returns latency.  LLC misses are memory-bus transactions — the
   bandwidth-limited, contended resource; LLC hits are served by the
   (much wider) on-chip fabric and are not bus-accounted. *)
let shared_access t ~core_id ~llc_ways ~paddr ~write =
  let c = core t core_id in
  let p = t.platform in
  match Cache.access_masked t.llc ~alloc_ways:llc_ways ~vaddr:paddr ~paddr ~write with
  | Cache.Hit -> p.Platform.lat_llc
  | Cache.Miss { evicted_dirty; evicted } ->
      back_invalidate t evicted;
      let bus_delay = Interconnect.record t.bus ~core:core_id ~now:c.cycles in
      let wb = if evicted_dirty then wb_cost_per_line else 0 in
      p.Platform.lat_llc + Dram.access t.dram ~paddr + wb + bus_delay

(* Issue prefetches suggested by the stream prefetcher: insert into the
   private L2 and the (inclusive) LLC. *)
let issue_prefetches t ~core_id ~llc_ways pf_addrs =
  let c = core t core_id in
  List.fold_left
    (fun cost pf ->
      (match c.l2 with
      | Some l2 -> begin
          match Cache.insert_clean l2 ~vaddr:pf ~paddr:pf with
          | Cache.Hit | Cache.Miss _ -> ()
        end
      | None -> ());
      (* Prefetches allocate under the issuing core's CAT class too. *)
      (match
         Cache.access_masked t.llc ~alloc_ways:llc_ways ~vaddr:pf ~paddr:pf
           ~write:false
       with
      | Cache.Hit -> ()
      | Cache.Miss { evicted; _ } -> back_invalidate t evicted);
      cost + prefetch_issue_cost)
    0 pf_addrs

(* Returns (latency to report, cycles of it already charged by the
   walk's own memory accesses). *)
let tlb_latency t ~core_id ~asid ~vpn ~kind ~global ~walk =
  let c = core t core_id in
  let p = t.platform in
  let first = match kind with Defs.Fetch -> c.itlb | Defs.Read | Defs.Write -> c.dtlb in
  match Tlb.access first ~asid ~vpn ~global with
  | Tlb.Hit -> (0, 0)
  | Tlb.Miss -> begin
      match Tlb.access c.l2tlb ~asid ~vpn ~global with
      | Tlb.Hit -> (l2_tlb_hit_extra, 0)
      | Tlb.Miss -> begin
          match walk with
          | Some f ->
              (* The walk's PT reads charge the core as they run; a
                 small fixed TLB-refill overhead comes on top. *)
              let w = f () in
              (w + 10, w)
          | None -> (p.Platform.tlb_walk, 0)
        end
    end

let access t ~core:core_id ~asid ?(global = false) ?(llc_ways = max_int) ?walk
    ~vaddr ~paddr ~kind () =
  let c = core t core_id in
  let p = t.platform in
  let write = match kind with Defs.Write -> true | Defs.Read | Defs.Fetch -> false in
  let vpn = Defs.page_of vaddr in
  let lat_tlb, already_charged =
    tlb_latency t ~core_id ~asid ~vpn ~kind ~global ~walk
  in
  let l1 = match kind with Defs.Fetch -> c.l1i | Defs.Read | Defs.Write -> c.l1d in
  let lat =
    match Cache.access l1 ~vaddr ~paddr ~write with
    | Cache.Hit -> p.Platform.lat_l1
    | Cache.Miss { evicted_dirty; evicted = _ } ->
        let l1_wb = if evicted_dirty then wb_cost_per_line else 0 in
        let inner =
          match c.l2 with
          | Some l2 -> begin
              (* The stream prefetcher observes L2 traffic (L1 misses). *)
              let pf_cost =
                match c.prefetcher with
                | Some pf ->
                    let suggestions =
                      Prefetcher.on_access pf ~paddr ~line:p.Platform.line
                    in
                    issue_prefetches t ~core_id ~llc_ways suggestions
                | None -> 0
              in
              match Cache.access l2 ~vaddr:paddr ~paddr ~write:false with
              | Cache.Hit -> p.Platform.lat_l2 + pf_cost
              | Cache.Miss { evicted_dirty = l2_dirty; evicted = _ } ->
                  let l2_wb = if l2_dirty then wb_cost_per_line else 0 in
                  p.Platform.lat_l2 + l2_wb + pf_cost
                  + shared_access t ~core_id ~llc_ways ~paddr ~write:false
            end
          | None -> shared_access t ~core_id ~llc_ways ~paddr ~write:false
        in
        p.Platform.lat_l1 + l1_wb + inner
  in
  let total = lat_tlb + lat in
  c.cycles <- c.cycles + total - already_charged;
  total

let cond_branch t ~core:core_id ~asid ~vaddr ~paddr ~taken =
  let c = core t core_id in
  let p = t.platform in
  let fetch = access t ~core:core_id ~asid ~vaddr ~paddr ~kind:Defs.Fetch () in
  let penalty =
    match Bhb.branch c.bhb ~addr:vaddr ~taken with
    | Bhb.Predicted -> 0
    | Bhb.Mispredicted -> p.Platform.mispredict_penalty
  in
  c.cycles <- c.cycles + penalty;
  fetch + penalty

let jump t ~core:core_id ~asid ~vaddr ~paddr ~target =
  let c = core t core_id in
  let p = t.platform in
  let fetch = access t ~core:core_id ~asid ~vaddr ~paddr ~kind:Defs.Fetch () in
  let penalty =
    match Btb.branch c.btb ~addr:vaddr ~target with
    | Btb.Predicted -> 0
    | Btb.Mispredicted -> p.Platform.mispredict_penalty
  in
  c.cycles <- c.cycles + penalty;
  fetch + penalty

(* A flush instruction walks the whole tag array (cost per capacity
   line, independent of occupancy) and writes back what is dirty. *)
let clflush_cost = 40

let clflush t ~core:core_id ~paddr =
  let line_mask = lnot (t.platform.Platform.line - 1) in
  let la = paddr land line_mask in
  back_invalidate t la;
  Cache.invalidate_line t.llc ~vaddr:la ~paddr:la;
  let c = core t core_id in
  c.cycles <- c.cycles + clflush_cost;
  clflush_cost

let flush_cache_cost cache =
  let lines = Cache.capacity_lines cache in
  let dirty = Cache.flush cache in
  (lines * inval_cost_per_line) + (dirty * wb_cost_per_line)

let flush_l1_hw t ~core:core_id =
  let c = core t core_id in
  let cost = flush_cache_cost c.l1d + flush_cache_cost c.l1i in
  c.cycles <- c.cycles + cost;
  cost

let flush_l2_private t ~core:core_id =
  let c = core t core_id in
  match c.l2 with
  | None -> 0
  | Some l2 ->
      let cost = flush_cache_cost l2 in
      c.cycles <- c.cycles + cost;
      cost

let flush_llc t ~core:core_id =
  let c = core t core_id in
  let cost = flush_cache_cost t.llc in
  (* Inclusive hierarchy: private copies are gone too. *)
  Array.iter
    (fun cc ->
      ignore (Cache.flush cc.l1d);
      ignore (Cache.flush cc.l1i);
      match cc.l2 with Some l2 -> ignore (Cache.flush l2) | None -> ())
    t.cores;
  c.cycles <- c.cycles + cost;
  cost

let flush_tlbs t ~core:core_id =
  let c = core t core_id in
  Tlb.flush_all c.itlb;
  Tlb.flush_all c.dtlb;
  Tlb.flush_all c.l2tlb;
  c.cycles <- c.cycles + tlb_flush_cost;
  tlb_flush_cost

let flush_branch_predictor t ~core:core_id =
  let c = core t core_id in
  Btb.flush c.btb;
  Bhb.flush c.bhb;
  c.cycles <- c.cycles + bp_flush_cost;
  bp_flush_cost

let l1d t ~core:i = (core t i).l1d
let l1i t ~core:i = (core t i).l1i
let l2 t ~core:i = (core t i).l2
let llc t = t.llc
let dtlb t ~core:i = (core t i).dtlb
let itlb t ~core:i = (core t i).itlb
let l2tlb t ~core:i = (core t i).l2tlb
let btb t ~core:i = (core t i).btb
let bhb t ~core:i = (core t i).bhb
let prefetcher t ~core:i = (core t i).prefetcher
let bus t = t.bus
let dram t = t.dram

let set_prefetcher_enabled t ~core:i b =
  match (core t i).prefetcher with
  | Some pf -> Prefetcher.set_enabled pf b
  | None -> ()
