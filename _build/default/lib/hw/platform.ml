type arch = X86 | Arm

type t = {
  name : string;
  arch : arch;
  cores : int;
  clock_mhz : int;
  line : int;
  l1d : Cache.geometry;
  l1i : Cache.geometry;
  l2 : Cache.geometry option;
  llc : Cache.geometry;
  itlb : Tlb.geometry;
  dtlb : Tlb.geometry;
  l2tlb : Tlb.geometry;
  btb : Btb.geometry;
  bhb : Bhb.geometry;
  lat_l1 : int;
  lat_l2 : int;
  lat_llc : int;
  dram : Dram.config;
  mispredict_penalty : int;
  tlb_walk : int;
  prefetcher_slots : int;
  prefetcher_degree : int;
  has_l1_flush_instr : bool;
  mem_bytes : int;
  kernel_text : int;
  kernel_stack : int;
  kernel_replicated : int;
  kernel_shared : int;
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

let haswell =
  {
    name = "haswell";
    arch = X86;
    cores = 4;
    clock_mhz = 3400;
    line = 64;
    l1d = { Cache.size = kib 32; ways = 8; line = 64; indexing = Cache.Virtual };
    l1i = { Cache.size = kib 32; ways = 8; line = 64; indexing = Cache.Virtual };
    l2 =
      Some { Cache.size = kib 256; ways = 8; line = 64; indexing = Cache.Physical };
    llc = { Cache.size = mib 8; ways = 16; line = 64; indexing = Cache.Physical };
    itlb = { Tlb.entries = 64; ways = 8 };
    dtlb = { Tlb.entries = 64; ways = 4 };
    l2tlb = { Tlb.entries = 1024; ways = 8 };
    btb = { Btb.entries = 4096; ways = 4 };
    bhb = { Bhb.history_bits = 16; pht_entries = 16384 };
    lat_l1 = 4;
    lat_l2 = 12;
    lat_llc = 42;
    dram = { Dram.banks = 8; row_bits = 13; t_hit = 140; t_miss = 230 };
    mispredict_penalty = 18;
    tlb_walk = 60;
    prefetcher_slots = 64;
    prefetcher_degree = 2;
    has_l1_flush_instr = false;
    mem_bytes = mib 256;
    kernel_text = kib 192;
    kernel_stack = kib 4;
    kernel_replicated = kib 16;
    kernel_shared = 9728 (* ~9.5 KiB: the Section 4.1 shared-data list *);
  }

let sabre =
  {
    name = "sabre";
    arch = Arm;
    cores = 4;
    clock_mhz = 800;
    line = 32;
    l1d = { Cache.size = kib 32; ways = 4; line = 32; indexing = Cache.Virtual };
    l1i = { Cache.size = kib 32; ways = 4; line = 32; indexing = Cache.Virtual };
    l2 = None;
    llc = { Cache.size = mib 1; ways = 16; line = 32; indexing = Cache.Physical };
    itlb = { Tlb.entries = 32; ways = 1 };
    dtlb = { Tlb.entries = 32; ways = 1 };
    l2tlb = { Tlb.entries = 128; ways = 2 };
    btb = { Btb.entries = 512; ways = 2 };
    bhb = { Bhb.history_bits = 8; pht_entries = 4096 };
    lat_l1 = 4;
    lat_l2 = 0 (* no private L2 *);
    lat_llc = 26;
    dram = { Dram.banks = 8; row_bits = 13; t_hit = 60; t_miss = 110 };
    mispredict_penalty = 9;
    tlb_walk = 40;
    prefetcher_slots = 0;
    prefetcher_degree = 0;
    has_l1_flush_instr = true;
    mem_bytes = mib 128;
    kernel_text = kib 96;
    kernel_stack = kib 4;
    kernel_replicated = kib 16;
    kernel_shared = 9728;
  }

(* An Arm v8 platform (Cortex A53-class) the paper did not yet have a
   port for.  §5.4.1 predicts the colour-ready IPC overhead "to be
   significantly reduced on the more recent architecture version"
   because v8 cores have 4-way (not 2-way) L2 TLBs; this preset exists
   to test that prediction.  Geometry follows a typical A53: same-size
   L1s with higher associativity, a 1 MiB 16-way shared L2/LLC, 4-way
   set-associative main TLB, and (as on the A9) no modelled stream
   prefetcher. *)
let armv8 =
  {
    name = "armv8";
    arch = Arm;
    cores = 4;
    clock_mhz = 1200;
    line = 64;
    l1d = { Cache.size = kib 32; ways = 4; line = 64; indexing = Cache.Virtual };
    l1i = { Cache.size = kib 32; ways = 4; line = 64; indexing = Cache.Virtual };
    l2 = None;
    llc = { Cache.size = mib 1; ways = 16; line = 64; indexing = Cache.Physical };
    itlb = { Tlb.entries = 32; ways = 2 };
    dtlb = { Tlb.entries = 32; ways = 2 };
    l2tlb = { Tlb.entries = 512; ways = 4 };
    btb = { Btb.entries = 1024; ways = 2 };
    bhb = { Bhb.history_bits = 12; pht_entries = 8192 };
    lat_l1 = 4;
    lat_l2 = 0;
    lat_llc = 20;
    dram = { Dram.banks = 8; row_bits = 13; t_hit = 70; t_miss = 130 };
    mispredict_penalty = 12;
    tlb_walk = 45;
    prefetcher_slots = 0;
    prefetcher_degree = 0;
    has_l1_flush_instr = true;
    mem_bytes = mib 128;
    kernel_text = kib 96;
    kernel_stack = kib 4;
    kernel_replicated = kib 16;
    kernel_shared = 9728;
  }

let all = [ haswell; sabre; armv8 ]

let by_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> p.name = s) all

let colours p =
  match p.l2 with
  | Some g -> Cache.colours g
  | None -> Cache.colours p.llc

let llc_colours p = Cache.colours p.llc

let cycles_to_us p c = float_of_int c /. float_of_int p.clock_mhz

let us_to_cycles p us = int_of_float (us *. float_of_int p.clock_mhz)

let pp ppf p =
  Format.fprintf ppf
    "@[<v>%s (%s, %d cores @ %d MHz)@,L1-D %a@,L1-I %a@,%s@,LLC %a@,%d page \
     colours@]"
    p.name
    (match p.arch with X86 -> "x86" | Arm -> "Arm v7")
    p.cores p.clock_mhz Cache.pp_geometry p.l1d Cache.pp_geometry p.l1i
    (match p.l2 with
    | Some g -> Format.asprintf "L2 %a (private)" Cache.pp_geometry g
    | None -> "no private L2")
    Cache.pp_geometry p.llc (colours p)
