(** Shared hardware constants and access kinds. *)

val page_size : int
(** 4 KiB pages on both modelled architectures. *)

val page_bits : int

type access_kind =
  | Read  (** data load, through the D-side *)
  | Write  (** data store, through the D-side, sets dirty bits *)
  | Fetch  (** instruction fetch, through the I-side *)

val pp_access_kind : Format.formatter -> access_kind -> unit

val is_pow2 : int -> bool

val log2 : int -> int
(** [log2 n] for a positive power of two [n]. *)

val page_of : int -> int
(** Page number of an address. *)

val page_offset : int -> int
