(** Table 5: cross-address-space IPC microbenchmark.

    Four kernel variants: [original] (single kernel, global kernel
    mappings), [colour-ready] (kernel supports time protection — so no
    global mappings — but runs as the single kernel), [intra-colour]
    (both threads on one cloned, coloured kernel) and [inter-colour]
    (threads on different cloned kernels; kernel hand-over on the IPC
    path, no padding).  The paper's headline here is the 14% Arm
    colour-ready overhead from TLB pressure. *)

type row = { variant : string; cycles : int; slowdown_pct : float }

type result = { platform : string; rows : row list }

val run : Quality.t -> Tp_hw.Platform.t -> result
