type t = Quick | Full

let samples = function Quick -> 600 | Full -> 2500
let irq_samples = function Quick -> 200 | Full -> 800
let workload_accesses = function Quick -> 150_000 | Full -> 1_000_000
let repeats = function Quick -> 30 | Full -> 320

let of_string = function
  | "quick" -> Some Quick
  | "full" -> Some Full
  | _ -> None
