(** The three evaluation scenarios of §5.2 and variants for ablation.

    - [Raw]: the unmitigated baseline;
    - [Full_flush]: maximal architected reset on every domain switch
      (whole hierarchy + predictors, prefetcher disabled);
    - [Protected]: the paper's time protection (coloured userland,
      cloned kernels, on-core flush, shared-data prefetch, IRQ
      partitioning, padded switches).

    [Coloured_only] (coloured userland, shared kernel) is the Figure 3
    "top" configuration; [Protected_no_pad] and
    [Protected_no_prefetcher] are the Table 4 / §5.3.2 ablations. *)

type kind =
  | Raw
  | Full_flush
  | Protected
  | Coloured_only
  | Protected_no_pad
  | Protected_no_prefetcher
  | Cat_llc
      (** way-partition the LLC with Intel CAT instead of page
          colouring (§2.3, CATalyst) — no colouring, no flushing:
          isolates the CAT mechanism's effect on the LLC channels *)

val name : kind -> string

val config : kind -> Tp_hw.Platform.t -> Tp_kernel.Config.t

val boot :
  ?colour_percent:int ->
  ?domains:int ->
  kind ->
  Tp_hw.Platform.t ->
  Tp_kernel.Boot.booted
(** Boot a fresh system in the scenario (2 domains by default). *)

val table3_set : kind list
(** Raw, Full_flush, Protected — the Table 3 columns. *)
