open Tp_kernel

type result = {
  platform : string;
  clone_us : float;
  destroy_us : float;
  fork_exec_us : float;
}

let page = Tp_hw.Defs.page_size

(* A conventional process image: text+data+libraries, far larger than
   a microkernel image. *)
let process_image_bytes = 768 * 1024

(* fork+exec: create an address space, copy the image, and populate a
   page table entry per page. *)
let fork_exec_cost b dom =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  let m = System.machine sys in
  let line = p.Tp_hw.Platform.line in
  let pages = process_image_bytes / page in
  let src = Boot.alloc_pages b dom ~pages in
  let dst = Boot.alloc_pages b dom ~pages in
  let vs = dom.Boot.dom_vspace in
  let t0 = System.now sys ~core:0 in
  (* exec: read the image in and write the new address space. *)
  for i = 0 to (process_image_bytes / line) - 1 do
    let sv = src + (i * line) and dv = dst + (i * line) in
    ignore
      (Tp_hw.Machine.access m ~core:0 ~asid:vs.Types.vs_asid ~vaddr:sv
         ~paddr:(System.translate vs sv) ~kind:Tp_hw.Defs.Read ());
    ignore
      (Tp_hw.Machine.access m ~core:0 ~asid:vs.Types.vs_asid ~vaddr:dv
         ~paddr:(System.translate vs dv) ~kind:Tp_hw.Defs.Write ())
  done;
  (* Page-table population: a PTE write per page plus kernel metadata. *)
  for i = 0 to pages - 1 do
    let pte = 0x0200_0000 + (i * 8) in
    ignore
      (Tp_hw.Machine.access m ~core:0 ~asid:0 ~global:true ~vaddr:pte ~paddr:pte
         ~kind:Tp_hw.Defs.Write ())
  done;
  (* Syscall overheads of fork + execve + loader fixups. *)
  Tp_hw.Machine.add_cycles m ~core:0 (Syscalls.trap_cost * 12);
  System.now sys ~core:0 - t0

let run q p =
  let reps = max 3 (Quality.repeats q / 10) in
  let clones = Array.make reps 0.0 in
  let destroys = Array.make reps 0.0 in
  let forks = Array.make reps 0.0 in
  for r = 0 to reps - 1 do
    let b = Boot.boot ~platform:p ~config:(Config.protected_ p) ~domains:1 () in
    let sys = b.Boot.sys in
    let dom = b.Boot.domains.(0) in
    let kmem = Retype.retype_kernel_memory dom.Boot.dom_pool ~platform:p in
    let t0 = System.now sys ~core:0 in
    let cap = Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem in
    let t1 = System.now sys ~core:0 in
    Clone.destroy sys ~core:0 cap;
    let t2 = System.now sys ~core:0 in
    clones.(r) <- Tp_hw.Platform.cycles_to_us p (t1 - t0);
    destroys.(r) <- Tp_hw.Platform.cycles_to_us p (t2 - t1);
    forks.(r) <- Tp_hw.Platform.cycles_to_us p (fork_exec_cost b dom)
  done;
  {
    platform = p.Tp_hw.Platform.name;
    clone_us = Tp_util.Stats.mean clones;
    destroy_us = Tp_util.Stats.mean destroys;
    fork_exec_us = Tp_util.Stats.mean forks;
  }
