type kind =
  | Raw
  | Full_flush
  | Protected
  | Coloured_only
  | Protected_no_pad
  | Protected_no_prefetcher
  | Cat_llc

let name = function
  | Raw -> "raw"
  | Full_flush -> "full flush"
  | Protected -> "protected"
  | Coloured_only -> "coloured userland only"
  | Protected_no_pad -> "protected (no pad)"
  | Protected_no_prefetcher -> "protected (prefetcher off)"
  | Cat_llc -> "CAT way-partitioned LLC"

let config kind p =
  let open Tp_kernel in
  match kind with
  | Raw -> Config.raw
  | Full_flush -> Config.full_flush p
  | Protected -> Config.protected_ p
  | Coloured_only -> { Config.raw with Config.colour_user = true }
  | Protected_no_pad -> { (Config.protected_ p) with Config.pad_cycles = 0 }
  | Protected_no_prefetcher ->
      { (Config.protected_ p) with Config.disable_prefetcher = true }
  | Cat_llc -> { Config.raw with Config.cat_llc = true }

let boot ?colour_percent ?(domains = 2) kind p =
  Tp_kernel.Boot.boot ?colour_percent ~domains ~platform:p ~config:(config kind p)
    ()

let table3_set = [ Raw; Full_flush; Protected ]
