lib/core/exp_fig7.mli: Quality Tp_hw
