lib/core/exp_fig6.mli: Quality Tp_channel Tp_hw
