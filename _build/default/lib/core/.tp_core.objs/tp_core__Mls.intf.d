lib/core/mls.mli: Tp_channel Tp_hw Tp_kernel
