lib/core/scenario.mli: Tp_hw Tp_kernel
