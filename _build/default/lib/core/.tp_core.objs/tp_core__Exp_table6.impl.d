lib/core/exp_table6.ml: Array Boot Domain_switch List Quality Scenario Sched System Tp_hw Tp_kernel Tp_util Uctx
