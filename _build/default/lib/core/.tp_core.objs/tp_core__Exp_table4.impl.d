lib/core/exp_table4.ml: Array List Quality Scenario Tp_attacks Tp_channel Tp_hw Tp_kernel Tp_util
