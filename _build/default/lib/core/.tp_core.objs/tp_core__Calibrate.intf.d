lib/core/calibrate.mli: Tp_hw
