lib/core/exp_table5.ml: Array Boot Config Ipc Quality Retype Sched System Tp_hw Tp_kernel Types
