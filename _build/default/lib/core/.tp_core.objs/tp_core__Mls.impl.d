lib/core/mls.ml: Array Boot Clone Config Scenario Stdlib Tp_attacks Tp_channel Tp_hw Tp_kernel Tp_util
