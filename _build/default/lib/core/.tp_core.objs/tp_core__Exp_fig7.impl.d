lib/core/exp_fig7.ml: Array Boot Config Exec List Quality System Tp_hw Tp_kernel Tp_util Tp_workloads
