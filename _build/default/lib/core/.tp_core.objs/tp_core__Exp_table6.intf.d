lib/core/exp_table6.mli: Quality Tp_hw
