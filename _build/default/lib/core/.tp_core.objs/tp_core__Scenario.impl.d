lib/core/scenario.ml: Config Tp_kernel
