lib/core/report.mli: Exp_fig3 Exp_fig4 Exp_fig6 Exp_fig7 Exp_table2 Exp_table3 Exp_table4 Exp_table5 Exp_table6 Exp_table7 Tp_channel
