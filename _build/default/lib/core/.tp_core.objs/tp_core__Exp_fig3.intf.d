lib/core/exp_fig3.mli: Quality Tp_channel Tp_hw
