lib/core/exp_fig4.ml: Quality Scenario Tp_attacks Tp_hw Tp_util
