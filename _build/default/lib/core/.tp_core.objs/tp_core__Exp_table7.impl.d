lib/core/exp_table7.ml: Array Boot Clone Config Quality Retype Syscalls System Tp_hw Tp_kernel Tp_util Types
