lib/core/calibrate.ml: Array Boot Domain_switch List Scenario Sched System Tp_hw Tp_kernel Uctx
