lib/core/exp_table3.mli: Quality Tp_channel Tp_hw
