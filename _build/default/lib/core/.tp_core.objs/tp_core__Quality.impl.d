lib/core/quality.ml:
