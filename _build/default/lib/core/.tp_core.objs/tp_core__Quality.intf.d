lib/core/quality.mli:
