lib/core/exp_fig3.ml: Quality Scenario Tp_attacks Tp_channel Tp_hw Tp_util
