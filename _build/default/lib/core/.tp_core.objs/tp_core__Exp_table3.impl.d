lib/core/exp_table3.ml: List Quality Scenario Tp_attacks Tp_channel Tp_hw Tp_util
