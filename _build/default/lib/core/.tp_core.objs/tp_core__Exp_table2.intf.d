lib/core/exp_table2.mli: Tp_hw
