lib/core/exp_table2.ml: Array Boot Config Domain_switch System Tp_hw Tp_kernel Types
