lib/core/exp_fig6.ml: Array Quality Scenario Tp_attacks Tp_channel Tp_hw Tp_util
