lib/core/exp_table5.mli: Quality Tp_hw
