lib/core/exp_table7.mli: Quality Tp_hw
