lib/core/exp_fig4.mli: Quality Tp_attacks Tp_hw
