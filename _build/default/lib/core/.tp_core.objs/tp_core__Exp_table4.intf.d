lib/core/exp_table4.mli: Quality Tp_channel Tp_hw
