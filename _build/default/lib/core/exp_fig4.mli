(** Figure 4: the cross-core LLC side channel against square-and-
    multiply ElGamal (GnuPG), raw vs. protected.  In the raw system
    the spy's trace shows the square-function dots and recovers the
    key; under colouring the spy cannot build an eviction set that
    observes the victim, and the trace is empty. *)

type result = {
  platform : string;
  raw_trace : Tp_attacks.Crypto.trace option;
  protected_trace : Tp_attacks.Crypto.trace option;
  raw_recovery : float;  (** fraction of key bits recovered, raw *)
}

val run : Quality.t -> seed:int -> Tp_hw.Platform.t -> result
