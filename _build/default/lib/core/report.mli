(** Text rendering of experiment results, shared by the [tpsim] CLI
    and the benchmark harness.  Each printer reproduces the layout of
    the corresponding paper table/figure, plus the paper's numbers for
    eyeball comparison where useful. *)

val table2 : Exp_table2.result -> unit
val fig3 : Exp_fig3.result -> unit
val table3 : Exp_table3.result -> unit
val table4 : Exp_table4.result -> unit
val fig4 : Exp_fig4.result -> unit
val fig5 : Exp_table4.result -> unit

val fig6 : Exp_fig6.result -> unit
val table5 : Exp_table5.result -> unit
val table6 : Exp_table6.result -> unit
val table7 : Exp_table7.result -> unit
val fig7 : Exp_fig7.fig7_result -> unit
val table8 : Exp_fig7.table8_result -> unit

val mb : float -> string
(** Format bits as millibits, 1 decimal. *)

val verdict_cell : Tp_channel.Leakage.result -> string
(** ["M=… mb (M0=… mb) LEAK"]-style cell. *)
