(** Hierarchical (Bell-LaPadula style) padding policy — §4.3's
    policy-freedom argument made executable.

    Padding the domain switch is the most expensive time-protection
    mechanism, and the paper makes the switch-latency pad a
    {e user-controlled kernel-image attribute} precisely so the
    security policy can decide where it is needed: "with a hierarchical
    security policy such as Bell-LaPadula, flushing may not be needed
    when switching to a higher classification level".

    Under BLP, information may flow from Low to High.  The flush-
    latency channel flows from the {e outgoing} domain to the incoming
    one, and the pad is taken from the outgoing kernel — so a Low
    kernel needs no pad (a Low→High leak is an authorised flow), while
    every kernel with somebody below it must pad.  This module is pure
    policy: it only writes per-image pad attributes through
    [Kernel_SetPad]; the kernel mechanisms are untouched. *)

type label = int
(** Classification level; higher = more secret. *)

val apply : Tp_kernel.Boot.booted -> labels:label array -> pad_cycles:int -> unit
(** Assign each domain's kernel pad according to its label:
    [pad_cycles] for any domain that dominates another (its outgoing
    switches could leak downwards), zero for the minimum level.
    [labels.(i)] labels domain [i]; lengths must match. *)

val padded_fraction : labels:label array -> float
(** Fraction of domains that must pad — the policy's cost relative to
    symmetric padding (1.0). *)

type result = {
  high_to_low : Tp_channel.Leakage.result;
      (** the forbidden flow: must be closed *)
  low_to_high : Tp_channel.Leakage.result;
      (** the authorised flow: remains open, and that is the point —
          no padding was spent preventing it *)
}

val demo : ?samples:int -> seed:int -> Tp_hw.Platform.t -> result
(** Run the flush-latency channel in both directions between a Low and
    a High domain under the BLP padding policy. *)
