open Tp_kernel

type label = int

let apply b ~labels ~pad_cycles =
  assert (Array.length labels = Array.length b.Boot.domains);
  let min_label = Array.fold_left Stdlib.min labels.(0) labels in
  Array.iteri
    (fun i dom ->
      let pad = if labels.(i) > min_label then pad_cycles else 0 in
      Clone.set_pad b.Boot.sys ~image:dom.Boot.dom_kernel_cap ~cycles:pad)
    b.Boot.domains

let padded_fraction ~labels =
  let n = Array.length labels in
  assert (n > 0);
  let min_label = Array.fold_left Stdlib.min labels.(0) labels in
  let padded = Array.fold_left (fun acc l -> if l > min_label then acc + 1 else acc) 0 labels in
  float_of_int padded /. float_of_int n

type result = {
  high_to_low : Tp_channel.Leakage.result;
  low_to_high : Tp_channel.Leakage.result;
}

(* One direction of the flush channel: the sender is always domain 0 of
   the harness, so direction is chosen by which label domain 0 gets. *)
let one_direction ~samples ~seed ~sender_label p =
  let b = Scenario.boot Scenario.Protected_no_pad p in
  let labels =
    match sender_label with
    | `High -> [| 1; 0 |] (* sender = High, receiver = Low *)
    | `Low -> [| 0; 1 |]
  in
  apply b ~labels ~pad_cycles:(Tp_hw.Platform.us_to_cycles p (Config.pad_us p));
  let sender, receiver =
    Tp_attacks.Flush_chan.prepare Tp_attacks.Flush_chan.Offline b
  in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples;
      symbols = Tp_attacks.Flush_chan.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed in
  Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng

let demo ?(samples = 400) ~seed p =
  {
    high_to_low = one_direction ~samples ~seed ~sender_label:`High p;
    low_to_high = one_direction ~samples ~seed:(seed + 1) ~sender_label:`Low p;
  }
