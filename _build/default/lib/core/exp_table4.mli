(** Table 4 and Figure 5: the cache-flush latency channel, online and
    offline observables, with and without switch padding.  Also
    returns the Figure 5 scatter series (sender cache footprint vs.
    receiver-observed offline time) for the unpadded system. *)

type cell = {
  observable : string;  (** "Online" / "Offline" *)
  padded : bool;
  leak : Tp_channel.Leakage.result;
}

type result = {
  platform : string;
  pad_us : float;  (** the pad used by the protected rows *)
  cells : cell list;
  fig5_series : (int * float) array;
      (** (sender symbol = sets dirtied bucket, offline cycles) for
          the unpadded offline channel — Figure 5's scatter *)
}

val run : Quality.t -> seed:int -> Tp_hw.Platform.t -> result
