(** Table 7: cost of kernel clone and destruction vs. conventional
    process creation.

    The comparison baseline is a simulated fork+exec: allocate an
    address space, populate page tables, and copy a process image an
    order of magnitude larger than the kernel image — the reason the
    paper's clone is a fraction of Linux process creation. *)

type result = {
  platform : string;
  clone_us : float;
  destroy_us : float;
  fork_exec_us : float;
}

val run : Quality.t -> Tp_hw.Platform.t -> result
