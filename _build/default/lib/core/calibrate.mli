(** Empirical calibration of the switch-padding latency.

    §4.3 leaves the padding value to the security policy because "a
    safe value requires a worst-case execution time analysis".  Short
    of formal WCET, a resource manager can calibrate: drive the
    domain switch with adversarial workloads (the Table 6 set — every
    prime&probe receiver dirties a different part of the machine),
    record the worst observed unpadded switch latency, and add a
    safety margin.  The result feeds [Kernel_SetPad]. *)

type t = {
  worst_observed_cycles : int;
  pad_cycles : int;  (** worst case plus the margin *)
  pad_us : float;
  trials : int;
}

val switch_pad :
  ?margin_pct:int -> ?trials_per_workload:int -> Tp_hw.Platform.t -> t
(** Calibrate on a fresh protected system.  [margin_pct] (default 25)
    is added on top of the worst observation; [trials_per_workload]
    defaults to 20. *)

val covers :
  t -> Tp_hw.Platform.t -> trials:int -> bool
(** Validation: re-run the adversarial workloads on a fresh system and
    check no unpadded switch exceeds the calibrated pad. *)
