(** Figure 6: the timer-interrupt channel (Trojan-programmed timer
    firing inside the spy's slice) raw vs. with IRQ partitioning.
    Returns the raw scatter (timer symbol vs. spy's first online
    period) plus the leakage verdicts. *)

type result = {
  platform : string;
  raw_leak : Tp_channel.Leakage.result;
  protected_leak : Tp_channel.Leakage.result;
  raw_series : (int * float) array;
      (** (timer value bucket 0..4 = 13..17 ms, first online period) *)
}

val run : Quality.t -> seed:int -> Tp_hw.Platform.t -> result
