(** Table 6: absolute domain-switch cost (no padding) when switching
    away from a domain that just ran one of the §5.3.2 attack
    receivers (idle, L1-D, L1-I, L2, L3 prime&probe), under raw, full
    flush and protected modes.  The paper's point: the defended
    systems' latency is workload-independent even before padding, and
    protected is an order of magnitude cheaper than the full flush. *)

type row = { mode : string; us_by_workload : (string * float) list }

type result = { platform : string; workloads : string list; rows : row list }

val run : Quality.t -> Tp_hw.Platform.t -> result
