(** Table 2: worst-case direct and indirect cost of flushing the L1
    caches vs. the complete cache hierarchy.

    Direct cost: the flush operation itself with every L1-D line
    dirty.  Indirect cost: the one-off slowdown of an application
    whose working set is the size of the flushed cache, measured as
    the extra time of its first pass after the flush. *)

type row = {
  which : string;  (** "L1 only" or "Full flush" *)
  direct_us : float;
  indirect_us : float;
  total_us : float;
}

type result = { platform : string; rows : row list }

val run : Tp_hw.Platform.t -> result
