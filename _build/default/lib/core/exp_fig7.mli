(** Figure 7 and Table 8: SPLASH-2-signature workload performance
    under cache colouring and kernel cloning.

    Figure 7: each workload runs alone; slowdown vs. the unpartitioned
    baseline for 75% / 50% colour shares on the standard kernel
    ("base") and 100% / 75% / 50% on a cloned kernel.

    Table 8: the 50%-colour protected configuration re-run while
    time-sharing the core with an idle domain, with and without
    padding — the full end-to-end cost of time protection. *)

type fig7_row = {
  workload : string;
  base_75 : float;  (** slowdown %, standard kernel, 75% colours *)
  base_50 : float;
  clone_100 : float;
  clone_75 : float;
  clone_50 : float;
}

type fig7_result = {
  platform : string;
  rows : fig7_row list;
  geomean : float * float * float * float * float;
}

val run_fig7 :
  ?workloads:string list -> Quality.t -> seed:int -> Tp_hw.Platform.t ->
  fig7_result

type table8_row = { workload : string; no_pad_pct : float; pad_pct : float }

type table8_result = {
  platform : string;
  rows : table8_row list;
  max_ : float * float;  (** (no-pad, pad) of the worst workload *)
  min_ : float * float;
  mean : float * float;  (** geometric means *)
}

val run_table8 :
  ?workloads:string list -> Quality.t -> seed:int -> Tp_hw.Platform.t ->
  table8_result
