open Tp_kernel

type t = {
  worst_observed_cycles : int;
  pad_cycles : int;
  pad_us : float;
  trials : int;
}

let page = Tp_hw.Defs.page_size

(* Adversarial slice workloads: each dirties a different structure the
   switch must clean up (cf. Table 6's receiver set). *)
let workload_specs p =
  let l1d = p.Tp_hw.Platform.l1d.Tp_hw.Cache.size in
  let l1i = p.Tp_hw.Platform.l1i.Tp_hw.Cache.size in
  let big =
    match p.Tp_hw.Platform.l2 with
    | Some g -> g.Tp_hw.Cache.size
    | None -> p.Tp_hw.Platform.llc.Tp_hw.Cache.size / 2
  in
  [ `Idle; `Write l1d; `Fetch l1i; `Write big ]

let run_body line spec buf ctx =
  match spec with
  | `Idle -> ()
  | `Write bytes ->
      while true do
        for i = 0 to (bytes / line) - 1 do
          Uctx.write ctx (buf + (i * line))
        done
      done
  | `Fetch bytes ->
      while true do
        for i = 0 to (bytes / line) - 1 do
          Uctx.fetch ctx (buf + (i * line))
        done
      done

let observe ~trials_per_workload p ~record =
  let line = p.Tp_hw.Platform.line in
  List.iter
    (fun spec ->
      let b = Scenario.boot Scenario.Protected_no_pad p in
      let sys = b.Boot.sys in
      let wl_dom = b.Boot.domains.(0) and idle_dom = b.Boot.domains.(1) in
      let bytes = match spec with `Idle -> page | `Write n | `Fetch n -> n in
      let buf = Boot.alloc_pages b wl_dom ~pages:(max 1 (bytes / page)) in
      let wl = Boot.spawn b wl_dom (run_body line spec buf) in
      let idle = Boot.spawn b idle_dom (fun _ -> ()) in
      Sched.remove (System.sched sys) ~core:0 wl;
      Sched.remove (System.sched sys) ~core:0 idle;
      let slice = Tp_hw.Platform.us_to_cycles p 1000.0 in
      for _ = 1 to trials_per_workload do
        ignore (Domain_switch.switch sys ~core:0 ~to_:wl);
        let ctx =
          Uctx.make sys ~core:0 wl ~slice_end:(System.now sys ~core:0 + slice)
        in
        (try
           run_body line spec buf ctx;
           Uctx.idle_rest ctx
         with Uctx.Preempted -> ());
        let cost = Domain_switch.switch sys ~core:0 ~to_:idle in
        record cost.Domain_switch.total
      done)
    (workload_specs p)

let switch_pad ?(margin_pct = 25) ?(trials_per_workload = 20) p =
  let worst = ref 0 in
  let trials = ref 0 in
  observe ~trials_per_workload p ~record:(fun c ->
      incr trials;
      if c > !worst then worst := c);
  let pad = !worst * (100 + margin_pct) / 100 in
  {
    worst_observed_cycles = !worst;
    pad_cycles = pad;
    pad_us = Tp_hw.Platform.cycles_to_us p pad;
    trials = !trials;
  }

let covers t p ~trials =
  let ok = ref true in
  observe ~trials_per_workload:trials p ~record:(fun c ->
      if c > t.pad_cycles then ok := false);
  !ok
