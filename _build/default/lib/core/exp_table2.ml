open Tp_kernel

type row = {
  which : string;
  direct_us : float;
  indirect_us : float;
  total_us : float;
}

type result = { platform : string; rows : row list }

let page = Tp_hw.Defs.page_size

(* Dirty every line of the L1-D through the kernel window. *)
let dirty_l1 sys ~core =
  let p = System.platform sys in
  let g = p.Tp_hw.Platform.l1d in
  let m = System.machine sys in
  for i = 0 to (g.Tp_hw.Cache.size / g.Tp_hw.Cache.line) - 1 do
    let a = 0x0100_0000 + (i * g.Tp_hw.Cache.line) in
    ignore
      (Tp_hw.Machine.access m ~core ~asid:0 ~global:true ~vaddr:a ~paddr:a
         ~kind:Tp_hw.Defs.Write ())
  done

(* Time one pass of an application over a working set of [bytes]. *)
let pass sys dom ~buf ~bytes =
  let line = (System.platform sys).Tp_hw.Platform.line in
  let m = System.machine sys in
  let vs = dom.Boot.dom_vspace in
  let t0 = System.now sys ~core:0 in
  for i = 0 to (bytes / line) - 1 do
    let vaddr = buf + (i * line) in
    let paddr = System.translate vs vaddr in
    ignore
      (Tp_hw.Machine.access m ~core:0 ~asid:vs.Types.vs_asid ~vaddr ~paddr
         ~kind:Tp_hw.Defs.Read ())
  done;
  System.now sys ~core:0 - t0

let run p =
  let us c = Tp_hw.Platform.cycles_to_us p c in
  let mk_row which ~flush ~ws_bytes =
    (* Fresh system per measurement for a clean worst case. *)
    let b = Boot.boot ~platform:p ~config:Config.raw ~domains:1 () in
    let sys = b.Boot.sys in
    let dom = b.Boot.domains.(0) in
    let buf = Boot.alloc_pages b dom ~pages:(ws_bytes / page) in
    (* Warm the working set (two passes: cold then warm). *)
    ignore (pass sys dom ~buf ~bytes:ws_bytes);
    let warm = pass sys dom ~buf ~bytes:ws_bytes in
    (* Worst-case direct cost: all L1-D lines dirty. *)
    dirty_l1 sys ~core:0;
    let direct = flush sys in
    let cold = pass sys dom ~buf ~bytes:ws_bytes in
    let indirect = max 0 (cold - warm) in
    {
      which;
      direct_us = us direct;
      indirect_us = us indirect;
      total_us = us (direct + indirect);
    }
  in
  let l1_row =
    mk_row "L1 only"
      ~flush:(fun sys -> Domain_switch.l1_flush_cost sys ~core:0)
      ~ws_bytes:p.Tp_hw.Platform.l1d.Tp_hw.Cache.size
  in
  let full_row =
    mk_row "Full flush"
      ~flush:(fun sys -> Domain_switch.full_flush_cost sys ~core:0)
      ~ws_bytes:
        (min p.Tp_hw.Platform.llc.Tp_hw.Cache.size (8 * 1024 * 1024))
  in
  { platform = p.Tp_hw.Platform.name; rows = [ l1_row; full_row ] }
