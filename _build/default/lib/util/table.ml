type row = Cells of string list | Sep

type t = {
  title : string;
  headers : string list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t cells =
  let n_head = List.length t.headers in
  let n = List.length cells in
  assert (n <= n_head);
  let padded = cells @ List.init (n_head - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let widths t =
  let ws = Array.of_list (List.map String.length t.headers) in
  let update = function
    | Sep -> ()
    | Cells cs ->
        List.iteri (fun i c -> ws.(i) <- Stdlib.max ws.(i) (String.length c)) cs
  in
  List.iter update t.rows;
  ws

let pad w s = s ^ String.make (w - String.length s) ' '

let pp ppf t =
  let ws = widths t in
  let line ch =
    let total = Array.fold_left ( + ) 0 ws + (3 * (Array.length ws - 1)) in
    String.make total ch
  in
  let pp_cells cs =
    let padded = List.mapi (fun i c -> pad ws.(i) c) cs in
    Format.fprintf ppf "%s@." (String.concat " | " padded)
  in
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%s@." (line '=');
  pp_cells t.headers;
  Format.fprintf ppf "%s@." (line '-');
  List.iter
    (function Sep -> Format.fprintf ppf "%s@." (line '-') | Cells cs -> pp_cells cs)
    (List.rev t.rows)

let print t =
  pp Format.std_formatter t;
  Format.printf "@."

let cell_f ?(prec = 2) x = Printf.sprintf "%.*f" prec x
let cell_i n = string_of_int n
let cell_pct x = Printf.sprintf "%+.2f%%" x
