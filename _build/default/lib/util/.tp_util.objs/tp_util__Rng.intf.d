lib/util/rng.mli:
