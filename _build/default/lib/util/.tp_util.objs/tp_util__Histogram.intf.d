lib/util/histogram.mli: Format
