lib/util/histogram.ml: Array Format Stdlib String
