lib/util/table.ml: Array Format List Printf Stdlib String
