(** Fixed-range binned counts over float samples.

    The channel toolchain bins receiver timings before density
    estimation; the benchmark harness uses histograms to render
    figure-style distributions as text. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi\]] with [bins] equal bins.
    Requires [hi > lo] and [bins > 0]. *)

val add : t -> float -> unit
(** Samples outside [\[lo, hi\]] are clamped into the edge bins, so the
    total count always equals the number of [add] calls. *)

val count : t -> int -> int
(** Count in bin [i]. *)

val counts : t -> int array
(** Copy of all bin counts. *)

val total : t -> int

val bins : t -> int

val bin_center : t -> int -> float

val bin_of : t -> float -> int
(** Bin index a value would land in (clamped). *)

val pp : width:int -> Format.formatter -> t -> unit
(** ASCII bar rendering, [width] characters for the largest bin. *)
