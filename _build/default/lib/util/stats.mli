(** Descriptive statistics over float samples.

    Used both by the channel-measurement toolchain (means and confidence
    bounds of shuffled-MI estimates) and by the benchmark harness
    (latency summaries, geometric means of slowdowns). *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val std : float array -> float
(** Sample standard deviation. *)

val min : float array -> float
val max : float array -> float

val median : float array -> float
(** Median (average of middle two for even lengths). Does not mutate. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,100\]], linear interpolation.
    Does not mutate its argument. *)

val geomean : float array -> float
(** Geometric mean. Requires all elements positive. *)

val sum : float array -> float

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** All of the above in one pass (plus a sort for the median). *)

val pp_summary : Format.formatter -> summary -> unit
