(** Aligned text tables for the benchmark harness.

    Every reproduced paper table is printed through this module so the
    bench output is uniform and diff-able across runs. *)

type t

val create : title:string -> headers:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header list are padded with empty cells;
    longer rows are rejected with an assertion failure. *)

val add_sep : t -> unit
(** Horizontal separator between row groups. *)

val pp : Format.formatter -> t -> unit

val print : t -> unit
(** [pp] to stdout, followed by a blank line. *)

(** Cell formatting helpers. *)

val cell_f : ?prec:int -> float -> string
(** Fixed-point float cell, default 2 decimals. *)

val cell_i : int -> string

val cell_pct : float -> string
(** Percentage with sign, 2 decimals, e.g. ["+3.50%"]. *)
