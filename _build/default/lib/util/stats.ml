let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int (n - 1)
  end

let std a = sqrt (variance a)

let min a =
  assert (Array.length a > 0);
  Array.fold_left Stdlib.min a.(0) a

let max a =
  assert (Array.length a > 0);
  Array.fold_left Stdlib.max a.(0) a

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  assert (Array.length a > 0);
  let b = sorted a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a p =
  assert (Array.length a > 0);
  assert (p >= 0.0 && p <= 100.0);
  let b = sorted a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let geomean a =
  assert (Array.length a > 0);
  let acc =
    Array.fold_left
      (fun s x ->
        assert (x > 0.0);
        s +. log x)
      0.0 a
  in
  exp (acc /. float_of_int (Array.length a))

let sum a = Array.fold_left ( +. ) 0.0 a

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
}

let summarize a =
  {
    n = Array.length a;
    mean = mean a;
    std = std a;
    min = min a;
    max = max a;
    median = median a;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f std=%.3f min=%.3f median=%.3f max=%.3f"
    s.n s.mean s.std s.min s.median s.max
