type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  assert (hi > lo);
  assert (bins > 0);
  { lo; hi; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let bin_of t x =
  let n = bins t in
  let raw = int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int n) in
  if raw < 0 then 0 else if raw >= n then n - 1 else raw

let add t x =
  let i = bin_of t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let count t i = t.counts.(i)
let counts t = Array.copy t.counts
let total t = t.total

let bin_center t i =
  let w = (t.hi -. t.lo) /. float_of_int (bins t) in
  t.lo +. ((float_of_int i +. 0.5) *. w)

let pp ~width ppf t =
  let m = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let bar = c * width / m in
      Format.fprintf ppf "%10.2f | %s %d@." (bin_center t i)
        (String.make bar '#') c)
    t.counts
