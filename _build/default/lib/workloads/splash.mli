(** SPLASH-2-signature synthetic workloads (Figure 7 / Table 8).

    The paper runs SPLASH-2 because "all we need is something that
    exercises the LLC" (§5.4.4).  Each synthetic kernel here carries
    the cache-relevant signature of the corresponding SPLASH-2
    program — working-set size, access pattern (streaming, strided,
    pointer-chasing-like irregular, blocked) and read/write mix — so
    the colouring experiments see the same kind of pressure the
    originals generate.  Parameters follow the paper's setup: ~220 MiB
    of address space would be overkill for the simulated caches, so
    working sets are scaled to the modelled LLC (up to several times
    its size for the cache-hungry programs). *)

type pattern =
  | Streaming of { stride : int }
      (** sequential sweeps (fft, radix passes) *)
  | Strided of { stride : int; span : int }
      (** fixed-stride sweeps over a span (lu, cholesky blocks) *)
  | Irregular of { span : int }
      (** pseudo-random accesses (barnes, fmm, raytrace) *)
  | Blocked of { block : int; span : int }
      (** repeated passes over blocks (ocean, water) *)

type t = {
  name : string;
  ws_kib : int;  (** working-set size in KiB *)
  pattern : pattern;
  write_ratio : float;  (** fraction of accesses that are stores *)
}

val all : t list
(** The eleven programs of Figure 7 (volrend is omitted, as in the
    paper). *)

val by_name : string -> t option

val body :
  t ->
  buf:int ->
  rng:Tp_util.Rng.t ->
  accesses:int ref ->
  ?stop_at:int ->
  ?finished:int ref ->
  unit ->
  Tp_kernel.Exec.body
(** A thread body that runs the workload over a buffer mapped at
    [buf] (of size [ws_kib]), incrementing [accesses] per access.  It
    runs slice after slice; if [stop_at] is given, the body records
    the cycle at which that access count was reached in [finished]
    (initially -1) and idles from then on — giving measurements exact
    completion times instead of whole-slice quantisation. *)

val run_alone :
  Tp_kernel.Boot.booted ->
  Tp_kernel.Boot.domain ->
  t ->
  accesses:int ->
  rng:Tp_util.Rng.t ->
  int
(** Run the workload as the only thread on core 0 until it has issued
    [accesses] memory accesses; returns the consumed cycles (the
    Figure 7 measurement). *)
