lib/workloads/splash.ml: Boot Exec List System Tp_hw Tp_kernel Tp_util Uctx
