lib/workloads/splash.mli: Tp_kernel Tp_util
