type pattern =
  | Streaming of { stride : int }
  | Strided of { stride : int; span : int }
  | Irregular of { span : int }
  | Blocked of { block : int; span : int }

type t = {
  name : string;
  ws_kib : int;
  pattern : pattern;
  write_ratio : float;
}

let kib = 1024

(* Signatures chosen so working sets straddle the modelled caches: the
   x86 private L2 (256 KiB, the colouring grain) and the Arm LLC
   (1 MiB).  raytrace and ocean are the cache-hungry ones, matching
   the paper's max-overhead observations. *)
let all =
  [
    { name = "barnes"; ws_kib = 512; pattern = Irregular { span = 512 * kib }; write_ratio = 0.25 };
    { name = "cholesky"; ws_kib = 384; pattern = Strided { stride = 320; span = 384 * kib }; write_ratio = 0.30 };
    { name = "fft"; ws_kib = 1536; pattern = Streaming { stride = 64 }; write_ratio = 0.35 };
    { name = "fmm"; ws_kib = 448; pattern = Irregular { span = 448 * kib }; write_ratio = 0.20 };
    { name = "lu"; ws_kib = 160; pattern = Blocked { block = 40 * kib; span = 160 * kib }; write_ratio = 0.40 };
    { name = "ocean"; ws_kib = 2048; pattern = Blocked { block = 160 * kib; span = 2048 * kib }; write_ratio = 0.40 };
    { name = "radiosity"; ws_kib = 320; pattern = Irregular { span = 320 * kib }; write_ratio = 0.25 };
    { name = "radix"; ws_kib = 1792; pattern = Streaming { stride = 64 }; write_ratio = 0.50 };
    { name = "raytrace"; ws_kib = 640; pattern = Irregular { span = 640 * kib }; write_ratio = 0.10 };
    { name = "waternsquared"; ws_kib = 192; pattern = Blocked { block = 48 * kib; span = 192 * kib }; write_ratio = 0.30 };
    { name = "waterspatial"; ws_kib = 224; pattern = Blocked { block = 56 * kib; span = 224 * kib }; write_ratio = 0.30 };
  ]

let by_name n = List.find_opt (fun w -> w.name = n) all

let body w ~buf ~rng ~accesses ?(stop_at = max_int) ?(finished = ref (-1)) () =
  let open Tp_kernel in
  let pos = ref 0 in
  let count = ref 0 in
  let span = w.ws_kib * kib in
  let next () =
    (match w.pattern with
    | Streaming { stride } -> pos := (!pos + stride) mod span
    | Strided { stride; span } -> pos := (!pos + stride) mod span
    | Irregular { span } ->
        (* Pointer-chasing codes have strong temporal locality: most
           accesses hit a hot subset (tree tops, interaction lists),
           the rest roam the full structure. *)
        let hot = span / 8 in
        if Tp_util.Rng.int rng 100 < 80 then
          pos := Tp_util.Rng.int rng (hot / 64) * 64
        else pos := Tp_util.Rng.int rng (span / 64) * 64
    | Blocked { block; span } ->
        (* Sweep within the current block; hop to the next block when
           a pass completes. *)
        let in_block = (!pos + 64) mod block in
        if in_block = 0 then pos := ((!pos / block * block) + block) mod span
        else pos := (!pos / block * block) + in_block;
        if !pos >= span then pos := 0);
    !pos
  in
  (* Real programs interleave arithmetic with their memory traffic
     (~4 compute cycles per access here, batched to keep the simulator
     fast); a pure back-to-back access stream would overstate memory-
     boundness and hence every cache-related overhead. *)
  let compute_per_access = 4 in
  let compute_batch = 8 in
  fun ctx ->
    while !finished < 0 do
      let off = next () in
      incr count;
      incr accesses;
      if
        w.write_ratio > 0.0
        && !count mod 100 < int_of_float (w.write_ratio *. 100.0)
      then Uctx.write ctx (buf + off)
      else Uctx.read ctx (buf + off);
      if !count mod compute_batch = 0 then
        Uctx.compute ctx (compute_per_access * compute_batch);
      if !accesses >= stop_at && !finished < 0 then
        finished := Uctx.now ctx
    done

let run_alone b dom w ~accesses ~rng =
  let open Tp_kernel in
  let sys = b.Boot.sys in
  let pages = (w.ws_kib * kib) / Tp_hw.Defs.page_size in
  let buf = Boot.alloc_pages b dom ~pages in
  let done_accesses = ref 0 in
  let finished = ref (-1) in
  ignore
    (Boot.spawn b dom
       (body w ~buf ~rng ~accesses:done_accesses ~stop_at:accesses ~finished ()));
  let start = System.now sys ~core:0 in
  while !finished < 0 do
    Exec.run_slices sys ~core:0 ~slices:1 ()
  done;
  !finished - start
