(** Discrete channel capacity via Blahut–Arimoto.

    §5.1 relates the paper's continuous MI to "other similar measures,
    such as discrete capacity [Shannon 1948]": for a uniform input
    distribution, zero continuous MI implies zero discrete capacity.
    Capacity is the MI maximised over input distributions — an upper
    bound on what {e any} encoding could extract per channel use, where
    the reported [M] is the rate of the specific uniform encoding.

    The estimator discretises the outputs into bins (the empirical
    channel matrix of {!Matrix}) and runs the classical Blahut–Arimoto
    iteration. *)

val blahut_arimoto :
  ?epsilon:float -> ?max_iters:int -> float array array -> float * float array
(** [blahut_arimoto w] for a channel matrix [w.(x).(y)] = P(y|x)
    (rows = inputs, each row summing to 1) returns the capacity in
    bits and the maximising input distribution.
    @raise Invalid_argument on an empty or non-stochastic matrix. *)

val of_samples : ?bins:int -> Mi.samples -> float
(** Estimate the channel's discrete capacity from observations:
    histogram outputs per input symbol into [bins] (default 32), then
    Blahut–Arimoto on the empirical matrix.  Upper-bounds (up to
    discretisation and sampling error) the uniform-input MI that
    {!Mi.estimate} reports. *)
