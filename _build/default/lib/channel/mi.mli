(** Continuous mutual information between discrete inputs and
    continuous outputs.

    The channel model of §5.1: the sender places symbols from a finite
    input set into the pipe; the receiver observes a real-valued time
    measurement.  MI is computed between a {e uniform} distribution on
    inputs and the observed conditional output densities (estimated by
    {!Kde}), integrated with the rectangle method:

    {v M = Σ_i (1/k) ∫ f_i(y) log2( f_i(y) / f(y) ) dy v}

    where [f] is the equal-weight mixture of the per-input densities.
    The result is in bits per channel use. *)

type samples = { input : int array; output : float array }
(** Paired observations; arrays must have equal non-zero length.
    Inputs are symbol indices (need not be contiguous, but MI weights
    every {e distinct} observed symbol equally, per the paper). *)

val default_grid_points : int

val estimate : ?grid_points:int -> samples -> float
(** Estimated mutual information in bits.  Always ≥ 0 (negative
    integration artefacts are clamped) and ≤ log2 of the number of
    distinct input symbols. *)

val estimate_with_permutation :
  ?grid_points:int -> samples -> perm:int array -> float
(** MI after re-pairing outputs by the permutation (used by the
    shuffle test in {!Leakage}); [perm] must be a permutation of
    [0 .. n-1]. *)

val bits_to_millibits : float -> float
