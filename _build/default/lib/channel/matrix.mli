(** Channel-matrix estimation and text rendering (Figure 3 style).

    The channel matrix gives the conditional probability of observing
    an output (binned) given each input symbol.  The paper renders it
    as a heat map; we render rows of intensity characters, one column
    per input symbol, log-scaled like the paper's colour bar. *)

type t = {
  symbols : int array;  (** distinct input symbols, ascending *)
  bin_lo : float;
  bin_hi : float;
  bins : int;
  prob : float array array;  (** [prob.(bin).(symbol_idx)] = P(bin | symbol) *)
}

val of_samples : ?bins:int -> Mi.samples -> t
(** Histogram the outputs per input symbol over a common range.
    [bins] defaults to 24 (a readable terminal heat map). *)

val pp : Format.formatter -> t -> unit
(** Rows are output bins (highest value on top, as in Figure 3),
    columns are input symbols, cells are log-scaled intensity. *)
