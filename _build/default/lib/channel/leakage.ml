type verdict = Leak | No_evidence | Negligible

type result = {
  m : float;
  m0 : float;
  n : int;
  verdict : verdict;
  shuffle_mean : float;
  shuffle_std : float;
}

let resolution_bits = 0.001

let test ?(shuffles = 100) ?(grid_points = Mi.default_grid_points) ~rng samples =
  let n = Array.length samples.Mi.input in
  assert (n > 0);
  let m = Mi.estimate ~grid_points samples in
  let shuffled =
    Array.init shuffles (fun _ ->
        let perm = Tp_util.Rng.permutation rng n in
        Mi.estimate_with_permutation ~grid_points samples ~perm)
  in
  let mean = Tp_util.Stats.mean shuffled in
  let std = Tp_util.Stats.std shuffled in
  let m0 = mean +. (1.96 *. std) in
  let verdict =
    if m <= resolution_bits then Negligible
    else if m > m0 then Leak
    else No_evidence
  in
  { m; m0; n; verdict; shuffle_mean = mean; shuffle_std = std }

let pp_verdict ppf = function
  | Leak -> Format.pp_print_string ppf "LEAK"
  | No_evidence -> Format.pp_print_string ppf "no evidence of leak"
  | Negligible -> Format.pp_print_string ppf "negligible (< 1 mb)"

let pp_result ppf r =
  Format.fprintf ppf "M = %.1f mb, M0 = %.1f mb, n = %d [%a]"
    (Mi.bits_to_millibits r.m) (Mi.bits_to_millibits r.m0) r.n pp_verdict
    r.verdict
