(** The paper's statistical leakage test (§5.1, after Chothia & Guha).

    Sampling noise makes the MI estimate non-zero even for a channel
    with no leak, so the estimate [M] alone proves nothing.  The test
    simulates the measurement noise of a guaranteed-zero-leakage
    channel by shuffling the outputs onto random inputs, estimating MI
    on each shuffled dataset, and deriving a 95% confidence bound [M0]
    for "compatible with zero leakage".  The verdict:

    - [M] ≤ 1 millibit: below the tool's resolution — negligible
      regardless of the test;
    - [M] ≤ [M0]: no evidence of a leak;
    - [M] > [M0] (strictly): the observations are inconsistent with
      zero leakage — a definite channel. *)

type verdict =
  | Leak  (** definite channel: [m > m0] and above resolution *)
  | No_evidence  (** within the zero-leakage confidence bound *)
  | Negligible  (** below the 1 millibit tool resolution *)

type result = {
  m : float;  (** estimated MI of the observed data, bits *)
  m0 : float;  (** 95% bound for a zero-leakage channel, bits *)
  n : int;  (** number of samples *)
  verdict : verdict;
  shuffle_mean : float;
  shuffle_std : float;
}

val resolution_bits : float
(** 1 millibit: the resolution the paper quotes for its tool. *)

val test :
  ?shuffles:int ->
  ?grid_points:int ->
  rng:Tp_util.Rng.t ->
  Mi.samples ->
  result
(** Run the full test.  [shuffles] defaults to 100, as in the paper.
    The confidence bound is [mean + 1.96 * std] of the shuffled-MI
    distribution (normal approximation to the paper's exact interval). *)

val pp_verdict : Format.formatter -> verdict -> unit

val pp_result : Format.formatter -> result -> unit
(** Renders like the paper: "M = 0.6 mb, M0 = 0.1 mb, n = 255040". *)
