lib/channel/kde.mli:
