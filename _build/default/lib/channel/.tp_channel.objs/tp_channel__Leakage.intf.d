lib/channel/leakage.mli: Format Mi Tp_util
