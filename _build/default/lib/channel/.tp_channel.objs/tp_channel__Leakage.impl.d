lib/channel/leakage.ml: Array Format Mi Tp_util
