lib/channel/kde.ml: Array Float Stdlib Tp_util
