lib/channel/capacity.ml: Array Float List Matrix
