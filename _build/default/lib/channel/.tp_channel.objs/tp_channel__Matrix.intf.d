lib/channel/matrix.mli: Format Mi
