lib/channel/mi.mli:
