lib/channel/matrix.ml: Array Format Hashtbl List Mi String Tp_util
