lib/channel/mi.ml: Array Fun Hashtbl Kde List Stdlib Tp_util
