lib/channel/capacity.mli: Mi
