type samples = { input : int array; output : float array }

let default_grid_points = 512

let log2 x = log x /. log 2.0

(* Group the sample indices by input symbol (preserving order). *)
let group_by_symbol s =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun idx sym ->
      let prev = try Hashtbl.find tbl sym with Not_found -> [] in
      Hashtbl.replace tbl sym (idx :: prev))
    s.input;
  Hashtbl.fold (fun sym idxs acc -> (sym, Array.of_list (List.rev idxs)) :: acc) tbl []
  |> List.sort compare

let estimate_grouped ~grid_points ~output groups =
  let n = Array.length output in
  assert (n > 0);
  let k = List.length groups in
  if k < 2 then 0.0
  else begin
    let lo = Tp_util.Stats.min output and hi = Tp_util.Stats.max output in
    (* Pad the grid so Gaussian tails are integrated; degenerate ranges
       get a symmetric unit pad. *)
    let pad = if hi > lo then 0.1 *. (hi -. lo) else 1.0 in
    let grid = { Kde.lo = lo -. pad; hi = hi +. pad; points = grid_points } in
    let step = Kde.grid_step grid in
    let densities =
      List.map
        (fun (_sym, idxs) ->
          let xs = Array.map (fun i -> output.(i)) idxs in
          Kde.estimate grid xs)
        groups
    in
    let w = 1.0 /. float_of_int k in
    let marginal = Array.make grid_points 0.0 in
    List.iter
      (fun d -> Array.iteri (fun g v -> marginal.(g) <- marginal.(g) +. (w *. v)) d)
      densities;
    let mi = ref 0.0 in
    List.iter
      (fun d ->
        for g = 0 to grid_points - 1 do
          let fi = d.(g) and f = marginal.(g) in
          if fi > 1e-300 && f > 1e-300 then
            mi := !mi +. (w *. fi *. log2 (fi /. f) *. step)
        done)
      densities;
    (* Numerical integration can produce tiny negatives; MI is >= 0. *)
    Stdlib.max 0.0 !mi
  end

let estimate ?(grid_points = default_grid_points) s =
  assert (Array.length s.input = Array.length s.output);
  assert (Array.length s.input > 0);
  estimate_grouped ~grid_points ~output:s.output (group_by_symbol s)

let estimate_with_permutation ?(grid_points = default_grid_points) s ~perm =
  assert (Array.length perm = Array.length s.output);
  let output = Array.map (fun i -> s.output.(perm.(i))) (Array.init (Array.length perm) Fun.id) in
  estimate_grouped ~grid_points ~output (group_by_symbol { s with output })

let bits_to_millibits b = 1000.0 *. b
