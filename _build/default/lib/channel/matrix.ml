type t = {
  symbols : int array;
  bin_lo : float;
  bin_hi : float;
  bins : int;
  prob : float array array;
}

let of_samples ?(bins = 24) s =
  let n = Array.length s.Mi.input in
  assert (n > 0 && Array.length s.Mi.output = n);
  let symbols =
    Array.of_seq
      (List.to_seq
         (List.sort_uniq compare (Array.to_list s.Mi.input)))
  in
  let sym_index = Hashtbl.create 8 in
  Array.iteri (fun i sym -> Hashtbl.replace sym_index sym i) symbols;
  let lo = Tp_util.Stats.min s.Mi.output and hi = Tp_util.Stats.max s.Mi.output in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let counts = Array.make_matrix bins (Array.length symbols) 0 in
  let totals = Array.make (Array.length symbols) 0 in
  Array.iteri
    (fun i sym ->
      let y = s.Mi.output.(i) in
      let b =
        int_of_float ((y -. lo) /. (hi -. lo) *. float_of_int bins)
      in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      let j = Hashtbl.find sym_index sym in
      counts.(b).(j) <- counts.(b).(j) + 1;
      totals.(j) <- totals.(j) + 1)
    s.Mi.input;
  let prob =
    Array.map
      (fun row ->
        Array.mapi
          (fun j c ->
            if totals.(j) = 0 then 0.0 else float_of_int c /. float_of_int totals.(j))
          row)
      counts
  in
  { symbols; bin_lo = lo; bin_hi = hi; bins; prob }

let intensity_chars = " .:-=+*#%@"

let cell p =
  if p <= 0.0 then ' '
  else begin
    (* Log scale from 1e-5 to 1, like the paper's colour bar. *)
    let v = (log10 p +. 5.0) /. 5.0 in
    let v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v in
    let i = int_of_float (v *. float_of_int (String.length intensity_chars - 1)) in
    intensity_chars.[i]
  end

let pp ppf t =
  let w = (t.bin_hi -. t.bin_lo) /. float_of_int t.bins in
  for b = t.bins - 1 downto 0 do
    let center = t.bin_lo +. ((float_of_int b +. 0.5) *. w) in
    Format.fprintf ppf "%12.1f |" center;
    Array.iteri (fun j _ -> Format.fprintf ppf "  %c " (cell t.prob.(b).(j))) t.symbols;
    Format.fprintf ppf "@."
  done;
  Format.fprintf ppf "%12s +" "";
  Array.iter (fun _ -> Format.fprintf ppf "----") t.symbols;
  Format.fprintf ppf "@.%12s  " "";
  Array.iter (fun sym -> Format.fprintf ppf "%3d " sym) t.symbols;
  Format.fprintf ppf "  (input symbol)@."
