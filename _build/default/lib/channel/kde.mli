(** Gaussian kernel density estimation over a fixed evaluation grid.

    The paper's methodology (§5.1) models attacker time measurements as
    a continuous probability density per input symbol, estimated with
    KDE [Silverman 1986].  We use the binned variant: samples are first
    histogrammed onto the evaluation grid, then the Gaussian kernel is
    applied to bin counts, which makes the 100-shuffle leakage test
    cheap (O(grid × kernel-window) per density instead of
    O(samples × grid)). *)

type grid = { lo : float; hi : float; points : int }
(** Evaluation grid: [points] equally spaced positions covering
    [\[lo, hi\]]. *)

val grid_step : grid -> float

val grid_position : grid -> int -> float

val silverman_bandwidth : float array -> float
(** Silverman's rule of thumb: [0.9 * min(sd, iqr/1.34) * n^(-1/5)].
    Returns 0 for degenerate (constant) samples; callers must apply a
    floor (see {!estimate}). *)

val estimate : grid -> ?bandwidth:float -> float array -> float array
(** [estimate grid samples] returns the estimated density at each grid
    position.  If [bandwidth] is omitted, Silverman's rule is used,
    floored at one grid step so that deterministic (zero-variance) data
    still yields a proper, narrow density instead of a division by
    zero.  The result integrates to ~1 over the grid (up to edge
    truncation). *)
