let log2 x = log x /. log 2.0

let blahut_arimoto ?(epsilon = 1e-6) ?(max_iters = 1000) w =
  let nx = Array.length w in
  if nx = 0 then invalid_arg "blahut_arimoto: empty matrix";
  let ny = Array.length w.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> ny then
        invalid_arg "blahut_arimoto: ragged matrix";
      let s = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (s -. 1.0) > 1e-6 then
        invalid_arg "blahut_arimoto: rows must sum to 1")
    w;
  let p = Array.make nx (1.0 /. float_of_int nx) in
  let capacity = ref 0.0 in
  (try
     for _ = 1 to max_iters do
       (* q.(y): output distribution under p. *)
       let q = Array.make ny 0.0 in
       for x = 0 to nx - 1 do
         for y = 0 to ny - 1 do
           q.(y) <- q.(y) +. (p.(x) *. w.(x).(y))
         done
       done;
       (* c.(x) = exp Σ_y w(y|x) ln (w(y|x)/q(y)) — the per-input
          divergence that drives the reweighting. *)
       let c =
         Array.init nx (fun x ->
             let acc = ref 0.0 in
             for y = 0 to ny - 1 do
               if w.(x).(y) > 0.0 && q.(y) > 0.0 then
                 acc := !acc +. (w.(x).(y) *. log (w.(x).(y) /. q.(y)))
             done;
             exp !acc)
       in
       let z = ref 0.0 in
       for x = 0 to nx - 1 do
         z := !z +. (p.(x) *. c.(x))
       done;
       (* Capacity bounds: log z is the lower bound, log max c the
          upper; stop when they meet. *)
       let upper = Array.fold_left Float.max 0.0 c in
       let lo = log2 !z and hi = log2 upper in
       capacity := lo;
       if hi -. lo < epsilon then raise Exit;
       for x = 0 to nx - 1 do
         p.(x) <- p.(x) *. c.(x) /. !z
       done
     done
   with Exit -> ());
  (Float.max 0.0 !capacity, p)

let of_samples ?(bins = 32) s =
  let m = Matrix.of_samples ~bins s in
  let nx = Array.length m.Matrix.symbols in
  if nx < 2 then 0.0
  else begin
    (* Matrix.prob is [bin].(symbol); transpose into rows-per-input. *)
    let w =
      Array.init nx (fun x ->
          Array.init m.Matrix.bins (fun y -> m.Matrix.prob.(y).(x)))
    in
    (* Guard against empty rows (symbols with no samples). *)
    let w =
      Array.of_list
        (List.filter
           (fun row -> Array.fold_left ( +. ) 0.0 row > 0.5)
           (Array.to_list w))
    in
    if Array.length w < 2 then 0.0
    else fst (blahut_arimoto w)
  end
