open Tp_kernel

let symbols = 5
let timer_irq = 4

let prepare b =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  let cfg = System.cfg sys in
  (* Under partitioning, the Trojan (domain 0) legitimately owns the
     timer IRQ: it is associated with the Trojan's kernel image, which
     is precisely what keeps it masked during the spy's slices. *)
  if cfg.Config.partition_irqs then
    Clone.set_int sys ~image:b.Boot.domains.(0).Boot.dom_kernel_cap ~irq:timer_irq;
  let ms_cycles = Tp_hw.Platform.us_to_cycles p 1000.0 in
  (* Spin granularity: coarse enough to keep the simulation tractable
     over 10 ms slices, fine enough (~half a microsecond) to resolve a
     millisecond-scale signal. *)
  let step = 2_000 in
  let jump_threshold = step + 4_000 in
  let sender ctx sym =
    (* Fire 13..17 ms from the start of our slice: 3..7 ms into the
       spy's following slice (10 ms slices). *)
    Uctx.syscall ctx (Syscalls.Set_timeout { irq = timer_irq; after = (13 + sym) * ms_cycles });
    Uctx.idle_rest ctx
  in
  let receiver ctx =
    let start = Uctx.now ctx in
    let last = ref start in
    let first_online = ref None in
    (try
       while true do
         Uctx.compute ctx step;
         let n = Uctx.now ctx in
         if n - !last > jump_threshold && !first_online = None then
           first_online := Some (float_of_int (!last - start));
         last := n
       done
     with Uctx.Preempted ->
       if !first_online = None then
         first_online := Some (float_of_int (!last - start)));
    !first_online
  in
  (sender, receiver)
