lib/attacks/kernel_chan.mli: Tp_kernel
