lib/attacks/irq_chan.mli: Tp_kernel
