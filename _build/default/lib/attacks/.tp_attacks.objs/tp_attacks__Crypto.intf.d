lib/attacks/crypto.mli: Format Tp_kernel Tp_util
