lib/attacks/harness.ml: Array Boot Exec List Stdlib Tp_channel Tp_hw Tp_kernel Tp_util Uctx
