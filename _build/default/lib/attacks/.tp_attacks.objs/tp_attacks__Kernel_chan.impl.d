lib/attacks/kernel_chan.ml: Array Boot Colour Retype Syscalls System Tp_hw Tp_kernel Types Uctx
