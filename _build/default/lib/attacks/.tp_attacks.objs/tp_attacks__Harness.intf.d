lib/attacks/harness.mli: Tp_channel Tp_hw Tp_kernel Tp_util
