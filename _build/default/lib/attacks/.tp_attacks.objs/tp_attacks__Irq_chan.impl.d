lib/attacks/irq_chan.ml: Array Boot Clone Config Syscalls System Tp_hw Tp_kernel Uctx
