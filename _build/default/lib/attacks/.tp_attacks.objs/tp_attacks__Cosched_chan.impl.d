lib/attacks/cosched_chan.ml: Array Boot System Tp_hw Tp_kernel Uctx
