lib/attacks/cache_channels.mli: Tp_hw Tp_kernel
