lib/attacks/dram_chan.ml: Array Boot Config Harness System Tp_hw Tp_kernel Uctx
