lib/attacks/flush_chan.mli: Tp_kernel
