lib/attacks/cache_channels.ml: Array Boot Colour System Tp_hw Tp_kernel Uctx
