lib/attacks/bus_chan.mli: Tp_channel Tp_hw Tp_kernel Tp_util
