lib/attacks/cosched_chan.mli: Tp_kernel
