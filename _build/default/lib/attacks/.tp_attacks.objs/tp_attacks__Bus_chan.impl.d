lib/attacks/bus_chan.ml: Array Boot Sched System Tp_channel Tp_hw Tp_kernel Tp_util
