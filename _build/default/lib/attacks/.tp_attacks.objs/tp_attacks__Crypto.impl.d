lib/attacks/crypto.ml: Array Boot Format Fun List Option Sched Stdlib System Tp_hw Tp_kernel Tp_util Types
