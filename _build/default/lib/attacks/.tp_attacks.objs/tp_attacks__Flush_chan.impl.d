lib/attacks/flush_chan.ml: Array Boot Stdlib System Tp_hw Tp_kernel Uctx
