lib/attacks/dram_chan.mli: Tp_channel Tp_kernel Tp_util
