(** The kernel-image covert channel of §5.3.1 / Figure 3.

    Userland is coloured in both configurations; what varies is
    whether the kernel is shared (one image whose text, stack and
    globals span all colours — boot memory is uncoloured) or cloned
    per domain (each image built from its domain's coloured pool).

    The sender transmits a symbol from I = 0..3 by invoking system
    calls during its slice: [Signal] for 0, [TCB_SetPriority] for 1,
    [Poll] for 2, idling for 3.  Each handler has its own text pages —
    hence its own cache colours — so with a shared kernel the
    receiver, probing the physically-indexed cache through its own
    coloured buffer, sees a handler-dependent number of misses.  With
    cloned kernels the sender's syscall footprint lives entirely in
    the sender's colours and the channel disappears. *)

val symbols : int
(** 4, as in the paper. *)

val prepare :
  Tp_kernel.Boot.booted ->
  (Tp_kernel.Uctx.t -> int -> unit) * (Tp_kernel.Uctx.t -> float option)
(** Sender/receiver pair for {!Harness.run_pair}.  The receiver's
    output is the number of probe misses (the paper's "LLC misses"
    axis of Figure 3). *)

val syscalls_per_slice : int
