open Tp_kernel

type t = {
  name : string;
  symbols : int;
  prepare :
    Boot.booted -> (Uctx.t -> int -> unit) * (Uctx.t -> float option);
}

let page = Tp_hw.Defs.page_size

let platform b = System.platform b.Boot.sys

(* A buffer the size of a cache, accessed line-sequentially, touches
   every set exactly [ways] times whatever the line/page geometry. *)
let cache_buffer b dom (g : Tp_hw.Cache.geometry) =
  Boot.alloc_pages b dom ~pages:(g.Tp_hw.Cache.size / page)

let sets_of g = Tp_hw.Cache.sets g

(* Touch the first [k] sets (all ways) of a cache-sized buffer through
   the chosen port (I-side fetches for the L1-I channel). *)
let touch_sets ctx ~base ~(g : Tp_hw.Cache.geometry) ~k ~kind =
  let line = g.Tp_hw.Cache.line in
  let sets = sets_of g in
  let total_lines = g.Tp_hw.Cache.size / line in
  for i = 0 to total_lines - 1 do
    if i mod sets < k then begin
      let a = base + (i * line) in
      match kind with
      | `Write -> Uctx.write ctx a
      | `Read -> Uctx.read ctx a
      | `Fetch -> Uctx.fetch ctx a
    end
  done

(* Probe a cache-sized buffer and count accesses slower than
   [threshold] — the receivers of §5.3.2 report miss counts, which is
   also what makes them immune to latency modulation below the
   threshold (e.g. DRAM row-buffer state). *)
let count_probe ctx ~base ~lines ~line ~threshold ~fetch =
  let misses = ref 0 in
  for i = 0 to lines - 1 do
    let a = base + (i * line) in
    let t0 = Uctx.now ctx in
    if fetch then Uctx.fetch ctx a else Uctx.read ctx a;
    if Uctx.now ctx - t0 > threshold then incr misses
  done;
  float_of_int !misses

let n_symbols = 16

(* Threshold separating an L1 hit from anything deeper. *)
let l1_threshold p = p.Tp_hw.Platform.lat_l1 + 2

let l1_channel ~name ~geom ~kind ~fetch =
  {
    name;
    symbols = n_symbols;
    prepare =
      (fun b ->
        let p = platform b in
        let g = geom p in
        let sbuf = cache_buffer b b.Boot.domains.(0) g in
        let rbuf = cache_buffer b b.Boot.domains.(1) g in
        let sets = sets_of g in
        let line = g.Tp_hw.Cache.line in
        let lines = g.Tp_hw.Cache.size / line in
        let threshold = l1_threshold p in
        let sender ctx sym =
          let k = sym * sets / n_symbols in
          for _ = 1 to 4 do
            touch_sets ctx ~base:sbuf ~g ~k ~kind
          done;
          Uctx.idle_rest ctx
        in
        let receiver ctx =
          Some (count_probe ctx ~base:rbuf ~lines ~line ~threshold ~fetch)
        in
        (sender, receiver));
  }

let l1d =
  l1_channel ~name:"L1-D"
    ~geom:(fun p -> p.Tp_hw.Platform.l1d)
    ~kind:`Write ~fetch:false

let l1i =
  l1_channel ~name:"L1-I"
    ~geom:(fun p -> p.Tp_hw.Platform.l1i)
    ~kind:`Fetch ~fetch:true

(* The L2 is physically indexed: buffers are share-scaled; under
   colouring each domain's buffer only reaches its own partition.  The
   receiver's probe is deliberately {e sequential}: the stream
   prefetcher reacts to it, and because prefetcher tracker state
   survives domain switches (no architected flush exists), the point
   at which prefetching kicks in on each page — and therefore the
   L2-miss count — retains a dependence on the previous domain's
   streaming, the §5.3.2 residual channel. *)
let l2 =
  {
    name = "L2";
    symbols = n_symbols;
    prepare =
      (fun b ->
        let p = platform b in
        let g =
          match p.Tp_hw.Platform.l2 with
          | Some g -> g
          | None -> p.Tp_hw.Platform.llc
        in
        let n_colours = Colour.n_colours p in
        let pages_for dom =
          g.Tp_hw.Cache.size / page * Colour.count dom.Boot.dom_colours
          / n_colours
        in
        let s_pages = pages_for b.Boot.domains.(0) in
        (* "with a probing set large enough to cover that cache"
           (§5.3.2): the receiver's buffer is full-cache-sized even
           under colouring, so the probe over-subscribes its partition
           and self-thrashes.  That self-thrash is the carrier of the
           residual prefetcher channel: every probe line misses unless
           the prefetcher covered it, and the prefetcher's coverage
           depends on tracker state left by the previous domain. *)
        let r_pages = g.Tp_hw.Cache.size / page in
        let sbuf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:s_pages in
        let rbuf = Boot.alloc_pages b b.Boot.domains.(1) ~pages:r_pages in
        let line = g.Tp_hw.Cache.line in
        let s_lines = s_pages * page / line in
        let r_lines = r_pages * page / line in
        let threshold =
          p.Tp_hw.Platform.lat_l1 + p.Tp_hw.Platform.lat_l2
          + (p.Tp_hw.Platform.lat_llc / 2)
        in
        let sender ctx sym =
          (* Sweep the first sym/n of the buffer with a stride of two
             lines: the footprint modulates the L2 directly (the raw
             channel) and, because a stride-2 pattern never confirms a
             stream, it leaves aliasing prefetcher trackers in a
             low-confidence state that differs measurably from the
             end-of-page state the receiver's own probe leaves — the
             carrier of the residual protected-mode channel. *)
          let lines_to_touch = sym * s_lines / n_symbols in
          let i = ref 0 in
          while !i < lines_to_touch do
            Uctx.write ctx (sbuf + (!i * line));
            i := !i + 2
          done;
          Uctx.idle_rest ctx
        in
        let receiver ctx =
          Some
            (count_probe ctx ~base:rbuf ~lines:r_lines ~line ~threshold
               ~fetch:false)
        in
        (sender, receiver));
  }

(* The receiver's page array must fit its first-level TLB (otherwise it
   thrashes itself and measures nothing); the sender sweeps a larger
   range to press on the shared capacity. *)
let tlb_receiver_pages = 48
let tlb_sender_pages = 128

let tlb =
  {
    name = "TLB";
    symbols = n_symbols;
    prepare =
      (fun b ->
        let p = platform b in
        let sbuf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:tlb_sender_pages in
        let rbuf = Boot.alloc_pages b b.Boot.domains.(1) ~pages:tlb_receiver_pages in
        (* A TLB miss that hits the L2 TLB still adds a visible delay;
           count anything above an L1-hit with a first-level TLB hit.
           The per-page read offsets are staggered so the probe's own
           lines land in distinct L1-D sets (one fixed offset per page
           would alias them all into set 0 and measure the L1, not the
           TLB). *)
        let threshold = p.Tp_hw.Platform.lat_l1 + 4 in
        let line = p.Tp_hw.Platform.line in
        let sets = p.Tp_hw.Platform.l1d.Tp_hw.Cache.size
                   / (p.Tp_hw.Platform.l1d.Tp_hw.Cache.ways * line) in
        let stagger i = i mod sets * line in
        let sender ctx sym =
          let k = sym * tlb_sender_pages / n_symbols in
          for _ = 1 to 8 do
            for i = 0 to k - 1 do
              Uctx.read ctx (sbuf + (i * page) + stagger i)
            done
          done;
          Uctx.idle_rest ctx
        in
        let receiver ctx =
          let misses = ref 0 in
          for i = 0 to tlb_receiver_pages - 1 do
            let t0 = Uctx.now ctx in
            Uctx.read ctx (rbuf + (i * page) + stagger i);
            if Uctx.now ctx - t0 > threshold then incr misses
          done;
          Some (float_of_int !misses)
        in
        (sender, receiver));
  }

let btb p =
  (* Branch-slot ranges as probed in §5.3.2. *)
  let lo, hi =
    match p.Tp_hw.Platform.arch with
    | Tp_hw.Platform.X86 -> (3584, 3712)
    | Tp_hw.Platform.Arm -> (0, 512)
  in
  let slots = hi - lo in
  let slot_stride = 16 in
  {
    name = "BTB";
    symbols = n_symbols;
    prepare =
      (fun b ->
        let pp = platform b in
        let span_pages = ((hi + 1) * slot_stride / page) + 2 in
        let sbuf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:span_pages in
        let rbuf = Boot.alloc_pages b b.Boot.domains.(1) ~pages:span_pages in
        (* Count mispredicted jumps: anything slower than a predicted
           L1-resident jump. *)
        let threshold =
          pp.Tp_hw.Platform.lat_l1 + (pp.Tp_hw.Platform.mispredict_penalty / 2)
        in
        let sender ctx sym =
          let k = sym * slots / n_symbols in
          for _ = 1 to 8 do
            for i = 0 to k - 1 do
              let src = sbuf + ((lo + i) * slot_stride) in
              (* The sender's target differs from the receiver's for
                 the same slot, so its training evicts/corrupts rather
                 than helpfully installing the receiver's entries. *)
              Uctx.jump ctx ~src ~target:(src + slot_stride)
            done
          done;
          Uctx.idle_rest ctx
        in
        let receiver ctx =
          let misses = ref 0 in
          for i = 0 to slots - 1 do
            let src = rbuf + ((lo + i) * slot_stride) in
            let t0 = Uctx.now ctx in
            Uctx.jump ctx ~src ~target:(src + (2 * slot_stride));
            if Uctx.now ctx - t0 > threshold then incr misses
          done;
          Some (float_of_int !misses)
        in
        (sender, receiver));
  }

(* The sender's pollution shows in the retraining transient, so the
   receiver measures a short chain rather than a long steady state. *)
let bhb_chain = 256

let bhb =
  {
    name = "BHB";
    symbols = n_symbols;
    prepare =
      (fun b ->
        let p = platform b in
        let sbuf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:4 in
        let rbuf = Boot.alloc_pages b b.Boot.domains.(1) ~pages:4 in
        let threshold =
          p.Tp_hw.Platform.lat_l1 + (p.Tp_hw.Platform.mispredict_penalty / 2)
        in
        let history_bits = p.Tp_hw.Platform.bhb.Tp_hw.Bhb.history_bits in
        let sender ctx sym =
          (* Targeted PHT poisoning à la Evtyushkin et al.: the global
             history register is under attacker control, so a run of
             taken filler branches pins it to all-ones — the same
             history the receiver's always-taken chain runs under —
             and the following not-taken branch at a chosen address
             then decrements exactly the receiver's PHT entry.  Two
             pokes drive the counter below the taken threshold; the
             number of poisoned addresses encodes the symbol. *)
          let poison addr =
            for _ = 1 to 2 do
              for f = 0 to history_bits - 1 do
                Uctx.cond_branch ctx ~addr:(sbuf + 4096 + (f * 64)) ~taken:true
              done;
              Uctx.cond_branch ctx ~addr ~taken:false
            done
          in
          let targets = sym * 64 / n_symbols in
          for j = 0 to targets - 1 do
            poison (sbuf + (j * 64))
          done;
          Uctx.idle_rest ctx
        in
        let receiver ctx =
          (* An always-taken chain is perfectly learnable: in steady
             state every counter saturates taken and the baseline
             misprediction count is zero, so any mispredict reads back
             foreign pollution of the aliased PHT entries. *)
          let misses = ref 0 in
          for i = 0 to bhb_chain - 1 do
            let addr = rbuf + (i mod 64 * 64) in
            let t0 = Uctx.now ctx in
            Uctx.cond_branch ctx ~addr ~taken:true;
            if Uctx.now ctx - t0 > threshold then incr misses
          done;
          Some (float_of_int !misses)
        in
        (sender, receiver));
  }

let all p =
  let base = [ l1d; l1i; tlb; btb p; bhb ] in
  match p.Tp_hw.Platform.arch with
  | Tp_hw.Platform.X86 -> base @ [ l2 ]
  | Tp_hw.Platform.Arm -> base
