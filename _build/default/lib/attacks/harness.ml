open Tp_kernel

type spec = {
  samples : int;
  symbols : int;
  slice_cycles : int;
  noise_sigma : float;
  warmup : int;
}

let default_spec p =
  {
    samples = 1500;
    symbols = 4;
    slice_cycles = Tp_hw.Platform.us_to_cycles p 1000.0 (* 1 ms, as in §5.3.1 *);
    noise_sigma = 8.0;
    warmup = 4;
  }

let run_pair b ~sender ~receiver spec ~rng =
  let sys = b.Boot.sys in
  let sym_rng = Tp_util.Rng.split rng in
  let noise_rng = Tp_util.Rng.split rng in
  let cur_sym = ref (-1) in
  let iteration = ref 0 in
  let inputs = ref [] and outputs = ref [] in
  let recorded = ref 0 in
  let sender_body ctx =
    let s = Tp_util.Rng.int sym_rng spec.symbols in
    cur_sym := s;
    sender ctx s
  in
  let receiver_body ctx =
    let m = receiver ctx in
    (match m with
    | Some y when !cur_sym >= 0 && !iteration >= spec.warmup ->
        inputs := !cur_sym :: !inputs;
        outputs :=
          (y +. Tp_util.Rng.gaussian noise_rng ~mu:0.0 ~sigma:spec.noise_sigma)
          :: !outputs;
        incr recorded
    | Some _ | None -> ());
    incr iteration
  in
  ignore (Boot.spawn b b.Boot.domains.(0) sender_body);
  ignore (Boot.spawn b b.Boot.domains.(1) receiver_body);
  (* Two slices per iteration (sender then receiver), plus slack for
     warmup and the first scheduling round. *)
  let slices = 2 * (spec.samples + spec.warmup + 2) in
  Exec.run_slices sys ~core:0 ~slice_cycles:spec.slice_cycles ~slices ();
  let input = Array.of_list (List.rev !inputs) in
  let output = Array.of_list (List.rev !outputs) in
  if Array.length input = 0 then
    invalid_arg
      "Harness.run_pair: no samples collected — the receiver never completed \
       a measurement within its slice (slice_cycles too small for the probe?)";
  (* Trim to the requested sample count for reproducible dataset sizes. *)
  let n = Stdlib.min spec.samples (Array.length input) in
  { Tp_channel.Mi.input = Array.sub input 0 n; output = Array.sub output 0 n }

let run_pair_cross_core b ~sender ~receiver ~cosched spec ~rng =
  let sys = b.Boot.sys in
  let sym_rng = Tp_util.Rng.split rng in
  let noise_rng = Tp_util.Rng.split rng in
  let cur_sym = ref (-1) in
  let iteration = ref 0 in
  let inputs = ref [] and outputs = ref [] in
  let sender_body ctx =
    let s = Tp_util.Rng.int sym_rng spec.symbols in
    cur_sym := s;
    sender ctx s
  in
  let receiver_body ctx =
    (match receiver ctx with
    | Some y when !cur_sym >= 0 && !iteration >= spec.warmup ->
        inputs := !cur_sym :: !inputs;
        outputs :=
          (y +. Tp_util.Rng.gaussian noise_rng ~mu:0.0 ~sigma:spec.noise_sigma)
          :: !outputs
    | Some _ | None -> ());
    incr iteration
  in
  ignore (Boot.spawn b b.Boot.domains.(0) ~core:0 sender_body);
  ignore (Boot.spawn b b.Boot.domains.(1) ~core:1 receiver_body);
  let cores = [ 0; 1 ] in
  let rounds =
    (* Concurrent: one round = one sender + one receiver slice.
       Co-scheduled: the domain rotation needs two rounds per sample. *)
    (if cosched then 2 else 1) * (spec.samples + spec.warmup + 2)
  in
  (if cosched then
     Tp_kernel.Exec.run_coscheduled sys ~cores ~slice_cycles:spec.slice_cycles
       ~rounds ()
   else
     Tp_kernel.Exec.run_concurrent sys ~cores ~slice_cycles:spec.slice_cycles
       ~rounds ());
  let input = Array.of_list (List.rev !inputs) in
  let output = Array.of_list (List.rev !outputs) in
  if Array.length input = 0 then
    invalid_arg "Harness.run_pair_cross_core: no samples collected";
  let n = Stdlib.min spec.samples (Array.length input) in
  { Tp_channel.Mi.input = Array.sub input 0 n; output = Array.sub output 0 n }

let measure_leak b ~sender ~receiver spec ~rng =
  let samples = run_pair b ~sender ~receiver spec ~rng in
  Tp_channel.Leakage.test ~rng samples

let timed ctx f =
  let t0 = Uctx.now ctx in
  f ();
  Uctx.now ctx - t0

let probe_reads ctx ~base ~stride ~count =
  timed ctx (fun () ->
      for i = 0 to count - 1 do
        Uctx.read ctx (base + (i * stride))
      done)

let probe_read_misses ctx ~base ~stride ~count ~threshold =
  let misses = ref 0 in
  for i = 0 to count - 1 do
    let t0 = Uctx.now ctx in
    Uctx.read ctx (base + (i * stride));
    if Uctx.now ctx - t0 > threshold then incr misses
  done;
  !misses
