(** DRAM row-buffer covert channel (beyond the paper's evaluation).

    The paper's taxonomy lists DRAM row buffers among the stateful
    microarchitectural resources (§2.2 item 1), but its evaluation
    does not attack them.  This module does, DRAMA-style: the sender
    encodes its symbol by opening rows in a set of banks (or leaving
    them closed); the receiver times accesses whose rows conflict in
    the same banks — an open sender row means the receiver's access
    pays the precharge+activate penalty.

    Two properties worth demonstrating:

    - {e intra-core}, the channel survives the paper's full time
      protection — none of the architected flushes touches row-buffer
      state, another instance of the incomplete hardware-software
      contract (the same argument as for the prefetcher);
    - it closes if the memory controller closes rows on the domain
      switch ({!Tp_hw.Dram.close_all} — hardware support that a
      revised contract could mandate), which the [close_rows] flag
      simulates. *)

val symbols : int

val run :
  Tp_kernel.Boot.booted ->
  samples:int ->
  close_rows_on_switch:bool ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Leakage.result
(** Intra-core sender/receiver pair in domains 0/1 of [b]; with
    [close_rows_on_switch] the domain-switch path additionally
    precharges all banks (the hypothetical hardware fix). *)
