(** The interrupt covert channel of §5.3.5 / Figure 6.

    The Trojan owns a timer device (an IRQ line).  Each of its slices
    it programs the timer to fire 13–17 ms later — i.e. 3–7 ms into
    the spy's following 10 ms slice — encoding its symbol in the
    position of the interrupt.  The spy observes its own progress: the
    kernel's mid-slice IRQ handling shows as a cycle-counter jump that
    splits the slice into two online periods, and the length of the
    first one is the received symbol.

    With IRQ partitioning (Requirement 5, [Kernel_SetInt]) the
    Trojan's IRQ is masked while the spy's kernel runs, the spy sees
    one uninterrupted slice, and the channel closes. *)

val symbols : int
(** 5: timer values 13, 14, 15, 16, 17 ms. *)

val timer_irq : int

val prepare :
  Tp_kernel.Boot.booted ->
  (Tp_kernel.Uctx.t -> int -> unit) * (Tp_kernel.Uctx.t -> float option)
(** The spy's output is the length of its first online period in
    cycles.  [prepare] associates {!timer_irq} with the Trojan's
    kernel when the configuration partitions IRQs. *)
