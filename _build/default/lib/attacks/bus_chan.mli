(** Cross-core interconnect (bus) covert channel — the §2.2/§6.1
    taxonomy item the paper's threat model must exclude because
    contemporary hardware cannot partition interconnect bandwidth.

    The sender modulates its memory-bus traffic from one core; the
    receiver, streaming on another core, senses the remaining
    bandwidth as its own access latency.  Time protection cannot close
    this channel (nothing is time-multiplexed); only the hypothetical
    hardware bandwidth partition ({!Tp_hw.Interconnect.set_partitioned})
    does — which is exactly the paper's argument for a new
    hardware-software contract. *)

val symbols : int

val run :
  Tp_kernel.Boot.booted ->
  samples:int ->
  partitioned:bool ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Leakage.result
(** Concurrent two-core run; domain 0 sends, domain 1 receives.
    [partitioned] enables the hypothetical hardware bandwidth
    partition. *)

val run_mode :
  Tp_kernel.Boot.booted ->
  samples:int ->
  mode:Tp_hw.Interconnect.mode ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Leakage.result
(** Like {!run} but with an explicit bus mode — including
    [Mba]-style approximate throttling, which the paper's footnote 5
    predicts will reduce but not close the channel. *)
