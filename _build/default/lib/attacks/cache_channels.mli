(** The intra-core prime&probe channels of Table 3.

    Each channel packages a sender (Trojan) and receiver (spy) pair for
    {!Harness.run_pair}.  The sender encodes its symbol as the number
    of sets/entries it touches in the target structure; the receiver
    reports the time to probe its own buffer (or, for predictors, a
    misprediction-dominated traversal time), exactly as in the paper:

    - L1-D / L1-I: Mastik-style prime&probe over cache-sized buffers
      (virtually indexed — colouring cannot help, only flushing);
    - TLB: one read per page over a page array;
    - BTB: chained jumps whose slots alias between domains;
    - BHB: conditional-branch history pollution
      (Evtyushkin et al. residual-state channel);
    - L2: physically-indexed prime&probe (x86 only — colourable, and
      the seat of the residual prefetcher channel of §5.3.2). *)

type t = {
  name : string;
  symbols : int;
  prepare :
    Tp_kernel.Boot.booted ->
    (Tp_kernel.Uctx.t -> int -> unit) * (Tp_kernel.Uctx.t -> float option);
      (** Allocate buffers in the two domains and return the
          (sender, receiver) closures. *)
}

val l1d : t
val l1i : t
val tlb : t
val btb : Tp_hw.Platform.t -> t
(** Probe ranges differ per platform (§5.3.2: slots 3584–3712 on
    Haswell, 0–512 on Sabre). *)

val bhb : t
val l2 : t
(** Meaningful on x86 only (the Sabre's L2 is the shared LLC). *)

val all : Tp_hw.Platform.t -> t list
(** The Table 3 row set for the platform. *)
