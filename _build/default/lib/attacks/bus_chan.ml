open Tp_kernel

let symbols = 8

let page = Tp_hw.Defs.page_size

let run_mode b ~samples ~mode ~rng =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  let bus = Tp_hw.Machine.bus (System.machine sys) in
  Tp_hw.Interconnect.set_mode bus mode;
  let line = p.Tp_hw.Platform.line in
  let llc_bytes = p.Tp_hw.Platform.llc.Tp_hw.Cache.size in
  (* Both parties stream over buffers twice the LLC, so (after warmup)
     every access misses the whole hierarchy and is a memory-bus
     transaction: the sender's rate is the signal, the receiver's
     latency the sensor.  Frames are constrained to disjoint DRAM bank
     groups so the demo isolates the interconnect from the (stateful,
     separately partitionable) row-buffer channel. *)
  let s_pages = 2 * llc_bytes / page in
  let r_pages = 2 * llc_bytes / page in
  let mk dom core ~bank_high ~pages =
    let tcb = Boot.spawn b dom ~core (fun _ -> ()) in
    Sched.remove (System.sched sys) ~core tcb;
    let buf =
      Boot.alloc_pages_where b dom
        ~pred:(fun f -> (f lsr 3) land 1 = if bank_high then 1 else 0)
        ~pages
    in
    (tcb, buf)
  in
  let s_tcb, s_buf = mk b.Boot.domains.(0) 0 ~bank_high:false ~pages:s_pages in
  let r_tcb, r_buf = mk b.Boot.domains.(1) 1 ~bank_high:true ~pages:r_pages in
  let s_lines = s_pages * page / line in
  let r_lines = r_pages * page / line in
  let s_pos = ref 0 and r_pos = ref 0 in
  (* The sender encodes its symbol in its issue rate: [spacing] extra
     compute cycles between consecutive transactions. *)
  let s_burst ?(spacing = 0) n =
    for _ = 1 to n do
      ignore
        (System.user_access sys ~core:0 s_tcb ~vaddr:(s_buf + (!s_pos * line))
           ~kind:Tp_hw.Defs.Read);
      if spacing > 0 then
        Tp_hw.Machine.add_cycles (System.machine sys) ~core:0 spacing;
      s_pos := (!s_pos + 17) mod s_lines
    done
  in
  (* Returns the summed latency of its own accesses, so clock
     re-alignment between bursts cannot pollute the measurement. *)
  let r_burst n =
    let acc = ref 0 in
    for _ = 1 to n do
      acc :=
        !acc
        + System.user_access sys ~core:1 r_tcb ~vaddr:(r_buf + (!r_pos * line))
            ~kind:Tp_hw.Defs.Read;
      r_pos := (!r_pos + 17) mod r_lines
    done;
    !acc
  in
  (* The two cores run concurrently: keep their (independent) clocks
     aligned so bus-timestamp comparisons mean global time. *)
  let m = System.machine sys in
  let sync () =
    let c0 = Tp_hw.Machine.cycles m ~core:0
    and c1 = Tp_hw.Machine.cycles m ~core:1 in
    if c0 < c1 then Tp_hw.Machine.add_cycles m ~core:0 (c1 - c0)
    else if c1 < c0 then Tp_hw.Machine.add_cycles m ~core:1 (c0 - c1)
  in
  (* Warm caches, TLBs and DRAM rows into steady state before
     recording. *)
  for _ = 1 to 8 do
    s_burst 256;
    ignore (r_burst 2048)
  done;
  let chunk = 128 in
  let inputs = Array.make samples 0 in
  let outputs = Array.make samples 0.0 in
  for i = 0 to samples - 1 do
    let sym = Tp_util.Rng.int rng symbols in
    inputs.(i) <- sym;
    (* Samples are separated by gaps much longer than the bus queue's
       memory; drop the residual load so symbols do not smear. *)
    Tp_hw.Interconnect.drain bus;
    sync ();
    let lat = ref 0 in
    let spacing = (symbols - 1 - sym) * 40 in
    for _ = 1 to 8 do
      s_burst ~spacing 16;
      lat := !lat + r_burst chunk;
      sync ()
    done;
    outputs.(i) <- float_of_int !lat
  done;
  Tp_channel.Leakage.test ~rng { Tp_channel.Mi.input = inputs; output = outputs }

let run b ~samples ~partitioned ~rng =
  run_mode b ~samples
    ~mode:
      (if partitioned then Tp_hw.Interconnect.Partitioned
       else Tp_hw.Interconnect.Open)
    ~rng
