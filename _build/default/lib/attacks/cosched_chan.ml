open Tp_kernel

let symbols = 8

let page = Tp_hw.Defs.page_size

let prepare b =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  let line = p.Tp_hw.Platform.line in
  (* Same instruments as {!Bus_chan}: both parties stream buffers
     larger than the LLC so every access is a memory-bus transaction.
     DRAM banks are kept disjoint to isolate the interconnect. *)
  let s_pages = 2 * p.Tp_hw.Platform.llc.Tp_hw.Cache.size / page in
  let r_pages = 2 * p.Tp_hw.Platform.llc.Tp_hw.Cache.size / page in
  let s_buf =
    Boot.alloc_pages_where b b.Boot.domains.(0)
      ~pred:(fun f -> (f lsr 3) land 1 = 0)
      ~pages:s_pages
  in
  let r_buf =
    Boot.alloc_pages_where b b.Boot.domains.(1)
      ~pred:(fun f -> (f lsr 3) land 1 = 1)
      ~pages:r_pages
  in
  let s_lines = s_pages * page / line in
  let r_lines = r_pages * page / line in
  let s_pos = ref 0 in
  let sender ctx sym =
    (* Modulate bus bandwidth across the whole slice (a real sender
       holds its rate for the receiver to sample concurrently): bursts
       of [sym] transactions interleaved with fixed compute. *)
    while true do
      for _ = 1 to sym do
        Uctx.read ctx (s_buf + (!s_pos * line));
        s_pos := (!s_pos + 17) mod s_lines
      done;
      Uctx.compute ctx 300
    done
  in
  let r_pos = ref 0 in
  let receiver ctx =
    (* Probe mid-slice: under concurrency the sender is then mid-burst
       on the other core; under gang scheduling it has been quiescent
       for half a slice and the bus queue is long drained.  The rolling
       cursor keeps each probe line cold in the private caches (the
       buffer is twice their size), so every probe access reaches the
       bus. *)
    Uctx.compute ctx (Uctx.remaining ctx * 2 / 5);
    let t0 = Uctx.now ctx in
    for _ = 1 to 1024 do
      Uctx.read ctx (r_buf + (!r_pos * line));
      r_pos := (!r_pos + 17) mod r_lines
    done;
    Some (float_of_int (Uctx.now ctx - t0))
  in
  (sender, receiver)
