open Tp_kernel

let symbols = 8

let page = Tp_hw.Defs.page_size

(* One representative page per bank out of a buffer (the attacker
   derives the bank mapping by timing, as in DRAMA; here we read it
   off the model). *)
let page_per_bank cfg vspace ~buf ~buf_pages ~banks =
  let chosen = Array.make banks (-1) in
  for i = buf_pages - 1 downto 0 do
    let va = buf + (i * page) in
    let paddr = System.translate vspace va in
    chosen.(Tp_hw.Dram.bank_of cfg ~paddr) <- va
  done;
  assert (Array.for_all (fun va -> va >= 0) chosen);
  chosen

let run b ~samples ~close_rows_on_switch ~rng =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  assert ((System.cfg sys).Config.close_dram_rows = close_rows_on_switch);
  let cfg = p.Tp_hw.Platform.dram in
  let banks = cfg.Tp_hw.Dram.banks in
  (* Enough pages to be sure of hitting every bank. *)
  let buf_pages = 16 * banks in
  let d0 = b.Boot.domains.(0) and d1 = b.Boot.domains.(1) in
  let s_buf = Boot.alloc_pages b d0 ~pages:buf_pages in
  let r_buf = Boot.alloc_pages b d1 ~pages:buf_pages in
  let s_pages = page_per_bank cfg d0.Boot.dom_vspace ~buf:s_buf ~buf_pages ~banks in
  let r_pages = page_per_bank cfg d1.Boot.dom_vspace ~buf:r_buf ~buf_pages ~banks in
  (* DRAMA-style: every probe line is clflushed after use, so each
     access reaches the DRAM and reads back the bank's row state. *)
  let sender ctx sym =
    for bk = 0 to sym - 1 do
      Uctx.read ctx s_pages.(bk);
      Uctx.clflush ctx s_pages.(bk)
    done;
    Uctx.idle_rest ctx
  in
  (* The receiver cannot pre-warm a page's TLB entry without also
     opening its own row in that bank (page ⊂ row), so it reports the
     summed raw latencies: the TLB-walk component is a per-scenario
     constant and only the per-bank row hit/miss spread carries
     information. *)
  let receiver ctx =
    let t0 = Uctx.now ctx in
    for bk = 0 to banks - 1 do
      (* If the sender opened its row in this bank, this access pays
         the precharge+activate penalty; it also re-installs our row
         so an untouched bank reads fast next time. *)
      Uctx.read ctx r_pages.(bk)
    done;
    let total = Uctx.now ctx - t0 in
    for bk = 0 to banks - 1 do
      Uctx.clflush ctx r_pages.(bk)
    done;
    Some (float_of_int total)
  in
  let spec =
    { (Harness.default_spec p) with Harness.samples; symbols; noise_sigma = 0.4 }
  in
  Harness.measure_leak b ~sender ~receiver spec ~rng
