open Tp_kernel

type observable = Online | Offline

let symbols = 16

let page = Tp_hw.Defs.page_size

let prepare observable b =
  let p = System.platform b.Boot.sys in
  let g = p.Tp_hw.Platform.l1d in
  let line = g.Tp_hw.Cache.line in
  let total_lines = g.Tp_hw.Cache.size / line in
  let sbuf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:(g.Tp_hw.Cache.size / page) in
  let sender ctx sym =
    let k = sym * total_lines / symbols in
    (* Dirty exactly k lines; their write-back during the L1 flush is
       what the receiver times. *)
    for i = 0 to k - 1 do
      Uctx.write ctx (sbuf + (i * line))
    done;
    Uctx.idle_rest ctx
  in
  (* The receiver reads its clock at the first instant of its slice
     and spins to exactly the preemption point, so the gap between
     the preemption of one slice and the start of the next — the
     offline time — is measured without quantisation.  An attacker
     calibrates to the tick the same way. *)
  let last_preempt = ref (-1) in
  let receiver ctx =
    let start = Uctx.now ctx in
    let offline =
      if !last_preempt >= 0 then Some (float_of_int (start - !last_preempt))
      else None
    in
    let result = ref None in
    (try
       while true do
         let r = Uctx.remaining ctx in
         Uctx.compute ctx (Stdlib.max 1 r)
       done
     with Uctx.Preempted ->
       let t = Uctx.now ctx in
       last_preempt := t;
       result :=
         (match observable with
         | Offline -> offline
         | Online -> Some (float_of_int (t - start))));
    !result
  in
  (sender, receiver)
