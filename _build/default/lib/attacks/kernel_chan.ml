open Tp_kernel

let symbols = 4
let syscalls_per_slice = 32

let page = Tp_hw.Defs.page_size

let prepare b =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  (* The receiver probes the physically-indexed cache the kernel's
     footprint lands in: the private L2 on x86, the shared L2/LLC on
     Arm.  A buffer of that cache's size from the receiver's pool
     covers exactly the receiver's reachable partition. *)
  let g =
    match p.Tp_hw.Platform.l2 with
    | Some g -> g
    | None -> p.Tp_hw.Platform.llc
  in
  let line = g.Tp_hw.Cache.line in
  (* The receiver's reachable partition is (its colours / all colours)
     of the cache; a buffer of exactly that size fills each reachable
     set [ways] times without self-eviction. *)
  let n_colours = System.n_colours sys in
  let share = Colour.count b.Boot.domains.(1).Boot.dom_colours in
  let pages = g.Tp_hw.Cache.size / page * share / n_colours in
  let rbuf = Boot.alloc_pages b b.Boot.domains.(1) ~pages in
  (* A second buffer covering the same sets, used to evict foreign
     lines between measurements (see the receiver below). *)
  let evict_buf = Boot.alloc_pages b b.Boot.domains.(1) ~pages in
  let total_lines = pages * page / line in
  (* Probe latency above this means the line left the probed cache:
     between a (TLB-warm) hit in that cache and the next level down. *)
  let threshold =
    match p.Tp_hw.Platform.l2 with
    | Some _ ->
        p.Tp_hw.Platform.lat_l1 + p.Tp_hw.Platform.lat_l2
        + (p.Tp_hw.Platform.lat_llc / 2)
    | None ->
        p.Tp_hw.Platform.lat_l1 + p.Tp_hw.Platform.lat_llc
        + p.Tp_hw.Platform.tlb_walk
        + (p.Tp_hw.Platform.dram.Tp_hw.Dram.t_hit / 2)
  in
  (* Sender-side kernel objects: a notification to Signal/Poll and a
     dormant helper thread to SetPriority. *)
  let nf = Boot.new_notification b b.Boot.domains.(0) in
  let helper_cap = Retype.retype_tcb b.Boot.domains.(0).Boot.dom_pool ~core:0 ~prio:50 in
  let helper =
    match helper_cap.Types.target with Types.Obj_tcb t -> t | _ -> assert false
  in
  (* The Trojan's own program code: an L1-I-sized footprint it executes
     every slice.  This is what any real sender looks like, and it is
     load-bearing: without it the kernel handlers' text would stay
     resident in the (never-flushed) L1-I across slices and only the
     first syscall of the run would reach the probed cache. *)
  let code_pages = p.Tp_hw.Platform.l1i.Tp_hw.Cache.size / page in
  let code_buf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:code_pages in
  let code_lines = code_pages * page / line in
  let flip = ref 0 in
  let sender ctx sym =
    for _ = 1 to syscalls_per_slice do
      match sym with
      | 0 -> Uctx.syscall ctx (Syscalls.Signal nf)
      | 1 ->
          flip := 1 - !flip;
          Uctx.syscall ctx (Syscalls.Set_priority (helper, 50 + !flip))
      | 2 -> Uctx.syscall ctx (Syscalls.Poll nf)
      | _ -> Uctx.compute ctx 50
    done;
    for i = 0 to code_lines - 1 do
      Uctx.fetch ctx (code_buf + (i * line))
    done;
    Uctx.idle_rest ctx
  in
  (* Three-pass receiver, the standard way to keep a prime&probe
     channel armed under LRU and a stream prefetcher:
     1. measure: a pass over the probe buffer in a {e permuted} order
       (Mastik chases a permuted pointer chain for the same reason —
        a sequential probe trains the prefetcher, which then hides the
        very misses being measured).  Because the buffer was last
        primed in the reverse permutation, one foreign insertion costs
        exactly one measured miss (no LRU cascade);
     2. evict: a pass over a second same-set buffer throws the foreign
        lines out, so the sender's next syscalls must re-insert them
        (otherwise resident kernel lines would only signal once);
     3. re-prime: reverse-permutation pass restoring the probe buffer. *)
  let rec gcd a bb = if bb = 0 then a else gcd bb (a mod bb) in
  (* Any stride coprime with the line count gives a full cycle with
     non-unit per-page deltas, which no stream tracker locks onto. *)
  let stride =
    let rec pick s = if gcd s total_lines = 1 then s else pick (s + 2) in
    pick 37
  in
  let perm i = i * stride mod total_lines in
  let receiver ctx =
    let misses = ref 0 in
    for i = 0 to total_lines - 1 do
      let t0 = Uctx.now ctx in
      Uctx.read ctx (rbuf + (perm i * line));
      if Uctx.now ctx - t0 > threshold then incr misses
    done;
    for i = 0 to total_lines - 1 do
      Uctx.read ctx (evict_buf + (perm i * line))
    done;
    for i = total_lines - 1 downto 0 do
      Uctx.read ctx (rbuf + (perm i * line))
    done;
    Some (float_of_int !misses)
  in
  (sender, receiver)
