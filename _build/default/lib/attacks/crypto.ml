open Tp_kernel

type trace = {
  slots : int;
  monitored_region : int;
  activity : int array;
  square_slots : bool array;
  recovered_bits : bool list;
  true_bits : bool list;
}

let page = Tp_hw.Defs.page_size

(* The victim's modular-exponentiation "routines": a code page each for
   square and multiply.  Executing a routine fetches its lines several
   times (loop iterations), exactly the footprint Mastik's spy sees. *)
type victim = {
  v_tcb : Types.tcb;
  v_square : int;  (** vaddr of the square routine's page *)
  v_multiply : int;
  v_data : int;
  v_square_frame : int;  (** physical frame of the square page *)
}

let op_reps = 4

let run_victim_op sys ~core v ~op =
  let base = match op with `Square -> v.v_square | `Multiply -> v.v_multiply in
  let line = (System.platform sys).Tp_hw.Platform.line in
  let lines = page / line in
  for _ = 1 to op_reps do
    for i = 0 to lines - 1 do
      ignore
        (System.user_access sys ~core v.v_tcb ~vaddr:(base + (i * line))
           ~kind:Tp_hw.Defs.Fetch)
    done
  done;
  (* A few data touches (operands). *)
  for i = 0 to 7 do
    ignore
      (System.user_access sys ~core v.v_tcb ~vaddr:(v.v_data + (i * line))
         ~kind:Tp_hw.Defs.Read)
  done

type spy = {
  s_tcb : Types.tcb;
  s_region : int;
  s_buf : int;  (** eviction buffer base vaddr *)
  s_lines : int;
  s_line : int;
  s_threshold : int;
  mutable s_baseline : int;
      (** probe misses with the victim idle (self-thrash etc.);
          "activity" means misses above this *)
}

(* Build an eviction buffer for one LLC page-group: [ways] frames whose
   frame number is congruent to [region] modulo the LLC colour count. *)
let build_spy_buffer b dom ~region ~llc_colours ~ways =
  match
    Boot.alloc_pages_where b dom
      ~pred:(fun f -> f mod llc_colours = region)
      ~pages:ways
  with
  | base -> Some base
  | exception Types.Kernel_error Types.Insufficient_untyped -> None

let prime sys ~core spy =
  for i = 0 to spy.s_lines - 1 do
    ignore
      (System.user_access sys ~core spy.s_tcb ~vaddr:(spy.s_buf + (i * spy.s_line))
         ~kind:Tp_hw.Defs.Read)
  done

let probe sys ~core spy =
  let misses = ref 0 in
  for i = 0 to spy.s_lines - 1 do
    let t0 = System.now sys ~core in
    ignore
      (System.user_access sys ~core spy.s_tcb ~vaddr:(spy.s_buf + (i * spy.s_line))
         ~kind:Tp_hw.Defs.Read);
    if System.now sys ~core - t0 > spy.s_threshold then incr misses
  done;
  !misses

let mk_victim b ~rng:_ =
  let sys = b.Boot.sys in
  let dom = b.Boot.domains.(0) in
  let tcb = Boot.spawn b dom ~core:0 (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 tcb;
  let square = Boot.alloc_pages b dom ~pages:1 in
  let multiply = Boot.alloc_pages b dom ~pages:1 in
  let data = Boot.alloc_pages b dom ~pages:1 in
  let square_frame = System.translate dom.Boot.dom_vspace square / page in
  { v_tcb = tcb; v_square = square; v_multiply = multiply; v_data = data;
    v_square_frame = square_frame }

let mk_spy_for_region b ~region =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  let dom = b.Boot.domains.(1) in
  let llc = p.Tp_hw.Platform.llc in
  let llc_colours = Tp_hw.Cache.colours llc in
  let ways = llc.Tp_hw.Cache.ways in
  match build_spy_buffer b dom ~region ~llc_colours ~ways with
  | None -> None
  | Some buf ->
      let tcb = Boot.spawn b dom ~core:1 (fun _ -> ()) in
      Sched.remove (System.sched sys) ~core:1 tcb;
      Some
        {
          s_tcb = tcb;
          s_region = region;
          s_buf = buf;
          s_lines = ways * page / llc.Tp_hw.Cache.line;
          s_line = llc.Tp_hw.Cache.line;
          s_threshold =
            p.Tp_hw.Platform.lat_l1 + p.Tp_hw.Platform.lat_l2
            + p.Tp_hw.Platform.lat_llc
            + (p.Tp_hw.Platform.dram.Tp_hw.Dram.t_hit / 2);
          s_baseline = 0;
        }

(* Calibration: try candidate regions, measuring probe misses with the
   victim idle (the spy's own baseline: self-thrash, CAT-induced
   misses, ...) and with the victim squaring; pick the region with the
   largest differential.  The spy does not know the victim's layout —
   it scans, as the paper's spy scans cache sets. *)
let calibrate b victim =
  let sys = b.Boot.sys in
  let p = System.platform sys in
  let llc_colours = Tp_hw.Cache.colours p.Tp_hw.Platform.llc in
  let best = ref None in
  for region = 0 to llc_colours - 1 do
    match mk_spy_for_region b ~region with
    | None -> ()
    | Some spy ->
        let baseline = ref 0 and active = ref 0 in
        for _ = 1 to 4 do
          prime sys ~core:1 spy;
          ignore (probe sys ~core:1 spy) (* settle *)
        done;
        for _ = 1 to 4 do
          prime sys ~core:1 spy;
          baseline := !baseline + probe sys ~core:1 spy
        done;
        for _ = 1 to 4 do
          prime sys ~core:1 spy;
          run_victim_op sys ~core:0 victim ~op:`Square;
          active := !active + probe sys ~core:1 spy
        done;
        spy.s_baseline <- (!baseline + 3) / 4;
        let diff = !active - !baseline in
        (match !best with
        | Some (_, d) when d >= diff -> ()
        | _ -> if diff > 0 then best := Some (spy, diff))
  done;
  Option.map fst !best

(* Square-and-multiply: one operation per time slot. *)
let op_sequence bits =
  List.concat_map (fun bit -> if bit then [ `Square; `Multiply ] else [ `Square ]) bits

let recover_bits activity =
  (* Active slots are squares; a single inactive slot between two
     squares is a multiply (bit 1), adjacency is bit 0. *)
  let n = Array.length activity in
  let actives =
    List.filter (fun i -> activity.(i) > 0) (List.init n Fun.id)
  in
  let rec gaps = function
    | a :: (b :: _ as rest) ->
        (if b = a + 1 then Some false else if b = a + 2 then Some true else None)
        :: gaps rest
    | _ -> []
  in
  List.filter_map Fun.id (gaps actives)

let run b ~key_bits ~rng =
  let sys = b.Boot.sys in
  let victim = mk_victim b ~rng in
  match calibrate b victim with
  | None -> None
  | Some spy ->
      let true_bits = List.init key_bits (fun _ -> Tp_util.Rng.bool rng) in
      let ops = op_sequence true_bits in
      let slots = List.length ops + 4 in
      let activity = Array.make slots 0 in
      let square_slots = Array.make slots false in
      List.iteri
        (fun slot op ->
          prime sys ~core:1 spy;
          run_victim_op sys ~core:0 victim ~op;
          square_slots.(slot) <- op = `Square;
          activity.(slot) <-
            Stdlib.max 0 (probe sys ~core:1 spy - spy.s_baseline))
        ops;
      let recovered_bits = recover_bits activity in
      Some
        {
          slots;
          monitored_region = spy.s_region;
          activity;
          square_slots;
          recovered_bits;
          true_bits;
        }

let recovery_rate t =
  let rec score acc n r tbits =
    match (r, tbits) with
    | rb :: r', tb :: t' -> score (acc + if rb = tb then 1 else 0) (n + 1) r' t'
    | _, [] | [], _ -> if n = 0 then 0.0 else float_of_int acc /. float_of_int n
  in
  score 0 0 t.recovered_bits t.true_bits

let pp_trace ppf t =
  Format.fprintf ppf "monitored LLC page-group %d, %d time slots@."
    t.monitored_region t.slots;
  Format.fprintf ppf "spy activity:   ";
  Array.iter
    (fun a -> Format.pp_print_char ppf (if a > 0 then '*' else '.'))
    t.activity;
  Format.fprintf ppf "@.victim squares: ";
  Array.iter
    (fun s -> Format.pp_print_char ppf (if s then 'S' else ' '))
    t.square_slots;
  Format.fprintf ppf "@.recovered %d/%d key bits (%.0f%%)@."
    (List.length t.recovered_bits) (List.length t.true_bits)
    (100.0 *. recovery_rate t)
