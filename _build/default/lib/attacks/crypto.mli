(** The cross-core LLC side channel of §5.3.3 / Figure 4: the Liu et
    al. prime&probe attack against GnuPG's square-and-multiply modular
    exponentiation (ElGamal decryption).

    The victim runs on one core, repeatedly decrypting: for each
    exponent bit it executes the [square] routine (instruction fetches
    from the square code page) and, when the bit is 1, the [multiply]
    routine.  The spy runs concurrently on another core, slicing time
    into slots; in each slot it primes a monitored group of LLC sets
    with an eviction buffer and probes it afterwards, recording the
    miss count.  The dots in the trace (slots with activity in the
    square-code set group) mark square invocations; the gaps between
    them encode the key bits.

    Under page colouring the victim's code pages live in colours the
    spy's pool does not contain, so the spy cannot even build an
    eviction set for those LLC sets — the channel closes. *)

type trace = {
  slots : int;
  monitored_region : int;  (** LLC page-group index the spy settled on *)
  activity : int array;  (** per-slot probe miss counts *)
  square_slots : bool array;  (** ground truth: victim squared in slot *)
  recovered_bits : bool list;  (** spy's key-bit guesses from gap lengths *)
  true_bits : bool list;  (** actual exponent bits (for scoring) *)
}

val run :
  Tp_kernel.Boot.booted ->
  key_bits:int ->
  rng:Tp_util.Rng.t ->
  trace option
(** Run the attack; [None] when the spy cannot construct any eviction
    set that observes victim activity (the protected outcome).
    Domain 0 is the victim (core 0), domain 1 the spy (core 1). *)

val recovery_rate : trace -> float
(** Fraction of key bits the spy recovered correctly; ~1.0 for a
    working attack, meaningless when [run] returns [None]. *)

val pp_trace : Format.formatter -> trace -> unit
(** Figure 4-style dot strip: time slots on the x axis, a mark where
    the spy saw cache activity. *)
