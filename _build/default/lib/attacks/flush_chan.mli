(** The cache-flush latency channel of §5.3.4 / Figure 5 / Table 4.

    Flushing the L1-D on a domain switch writes back every dirty line,
    so the switch latency depends on how much dirty data the outgoing
    domain left — execution history leaks through the flush itself.
    The sender modulates the number of cache sets it dirties per
    slice; the receiver watches its cycle counter for the large jump
    that marks preemption: the jump length ("offline time") varies
    with the sender's dirty footprint, and the uninterrupted period
    ("online time") is the complementary observable.

    Padding the switch to a configured worst case (Requirement 4)
    makes both observables constant. *)

type observable = Online | Offline

val symbols : int

val prepare :
  observable ->
  Tp_kernel.Boot.booted ->
  (Tp_kernel.Uctx.t -> int -> unit) * (Tp_kernel.Uctx.t -> float option)
(** Sender dirties [sym/symbols] of the L1-D; receiver reports the
    chosen observable in cycles. *)
