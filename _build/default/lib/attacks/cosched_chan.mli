(** Cross-core bandwidth channel under scheduler control (§3.1.1).

    The confinement scenario must exclude interconnect channels because
    hardware cannot partition them; the paper's way out is to
    "co-schedule domains across the cores, such that at any time only
    one domain executes".  This module packages a cross-core
    bus-contention sender/receiver pair for
    {!Harness.run_pair_cross_core}: under free-running concurrency the
    channel is open even with full time protection; under gang
    scheduling the sender is simply never executing while the receiver
    measures, and the channel closes by construction. *)

val symbols : int

val prepare :
  Tp_kernel.Boot.booted ->
  (Tp_kernel.Uctx.t -> int -> unit) * (Tp_kernel.Uctx.t -> float option)
(** Sender streams bus traffic proportional to its symbol from core 0;
    the receiver senses residual bandwidth from core 1 through a fixed
    LLC-resident probe set. *)
