(** The seL4 retype operation: carving kernel objects out of Untyped
    memory (§2.4).

    The kernel never allocates: every object is backed by frames taken
    from an Untyped supplied by userland, so colouring user memory
    colours all dynamic kernel data (Figure 2).  Retyped objects get
    capabilities derived from the Untyped's capability, so revoking the
    Untyped reclaims everything carved from it. *)

val untyped_of_frames : n_colours:int -> int list -> Types.cap
(** Wrap raw frames as a root Untyped capability (boot-time only). *)

val split_colours : Types.cap -> Colour.set -> Types.cap
(** Carve a child Untyped containing exactly the parent's free frames
    of the given colours (the initial process's "separate all free
    memory into coloured pools" step, §3.3).
    @raise Types.Kernel_error [Insufficient_colours] if the parent has
    no frame of a requested colour. *)

val split_frames : Types.cap -> frames:int -> Types.cap
(** Carve a child Untyped with the first [frames] free frames. *)

(** Each retype takes frames from the Untyped behind the capability and
    returns a derived capability to the new object.
    @raise Types.Kernel_error [Invalid_capability] on a stale cap,
    [Wrong_object_type] if it is not an Untyped,
    [Insufficient_untyped] when out of frames. *)

val retype_tcb : Types.cap -> core:int -> prio:int -> Types.cap
val retype_frame : Types.cap -> Types.cap
val retype_endpoint : Types.cap -> Types.cap
val retype_notification : Types.cap -> Types.cap
val retype_vspace : Types.cap -> asid:int -> Types.cap

val retype_sched_context : Types.cap -> budget:int -> period:int -> Types.cap
(** A scheduling-context object (Lyons et al. 2018): caps a bound
    thread to [budget] execution cycles per [period].  Requires
    [0 < budget <= period]. *)

val retype_kernel_memory : Types.cap -> platform:Tp_hw.Platform.t -> Types.cap
(** An (unpopulated) Kernel_Memory object big enough for one image. *)

val take_frames : Types.cap -> int -> int list
(** Take [n] raw frames out of the Untyped (models a batch of Frame
    retypes for user buffers without minting one capability per page).
    @raise Types.Kernel_error [Insufficient_untyped] *)

val take_frames_where : Types.cap -> pred:(int -> bool) -> int -> int list
(** Like {!take_frames} but only frames satisfying [pred] — e.g. an
    attacker hand-picking frames by LLC set group to build an eviction
    set, which is only possible when its pool spans those frames.
    @raise Types.Kernel_error [Insufficient_untyped] *)

val untyped_free_frames : Types.cap -> int
(** Free frames remaining behind an Untyped capability. *)

val the_untyped : Types.cap -> Types.untyped
(** @raise Types.Kernel_error [Wrong_object_type] *)
