exception Preempted

type t = {
  sys : System.t;
  core : int;
  tcb : Types.tcb;
  slice_end : int;
}

let make sys ~core tcb ~slice_end = { sys; core; tcb; slice_end }
let sys t = t.sys
let core t = t.core
let tcb t = t.tcb
let now t = System.now t.sys ~core:t.core

(* Deliver fired, unmasked timer IRQs; then enforce the slice budget. *)
let post t =
  let cfg = System.cfg t.sys in
  let pc = System.per_core t.sys t.core in
  let fired =
    Irq.pending (System.irq t.sys) ~core:t.core ~now:(now t)
      ~partitioned:cfg.Config.partition_irqs ~current:pc.System.cur_kernel
  in
  List.iter (fun irq -> Syscalls.handle_irq t.sys ~core:t.core ~irq) fired;
  if now t >= t.slice_end then raise Preempted

let read t vaddr =
  ignore (System.user_access t.sys ~core:t.core t.tcb ~vaddr ~kind:Tp_hw.Defs.Read);
  post t

let write t vaddr =
  ignore (System.user_access t.sys ~core:t.core t.tcb ~vaddr ~kind:Tp_hw.Defs.Write);
  post t

let fetch t vaddr =
  ignore (System.user_access t.sys ~core:t.core t.tcb ~vaddr ~kind:Tp_hw.Defs.Fetch);
  post t

let vspace t =
  match t.tcb.Types.t_vspace with
  | Some vs -> vs
  | None -> raise (Types.Kernel_error Types.Invalid_capability)

let jump t ~src ~target =
  let vs = vspace t in
  let paddr = System.translate vs src in
  ignore
    (Tp_hw.Machine.jump (System.machine t.sys) ~core:t.core
       ~asid:vs.Types.vs_asid ~vaddr:src ~paddr ~target);
  post t

let cond_branch t ~addr ~taken =
  let vs = vspace t in
  let paddr = System.translate vs addr in
  ignore
    (Tp_hw.Machine.cond_branch (System.machine t.sys) ~core:t.core
       ~asid:vs.Types.vs_asid ~vaddr:addr ~paddr ~taken);
  post t

let clflush t vaddr =
  let vs = vspace t in
  let paddr = System.translate vs vaddr in
  ignore (Tp_hw.Machine.clflush (System.machine t.sys) ~core:t.core ~paddr);
  post t

let compute t n =
  assert (n >= 0);
  Tp_hw.Machine.add_cycles (System.machine t.sys) ~core:t.core n;
  post t

let syscall t call =
  Syscalls.execute t.sys ~core:t.core t.tcb call;
  post t

let remaining t = Stdlib.max 0 (t.slice_end - now t)

let idle_rest t =
  (* Advance in interrupt-latency-sized steps so timers fire at the
     right instant even while the thread sleeps. *)
  let step = 1000 in
  let rec go () =
    let left = t.slice_end - now t in
    if left <= 0 then (post t; raise Preempted)
    else begin
      Tp_hw.Machine.add_cycles (System.machine t.sys) ~core:t.core
        (Stdlib.min step left);
      post t;
      go ()
    end
  in
  go ()
