(** Endpoint IPC: rendezvous semantics plus the fastpath cost model.

    The Table 5 microbenchmark measures one-way cross-address-space
    message transfer.  {!one_way} executes the fastpath's memory
    traffic: trap, fastpath text, endpoint and TCB lines, and the
    address-space switch.  Under a colour-ready kernel the kernel
    window is mapped per-ASID instead of global, so on a low-
    associativity TLB (the Sabre's 2-way L2 TLB, 1-way L1 TLBs) the
    duplicated kernel entries conflict-miss on every switch — the
    paper's 14% Arm overhead arises from exactly this, and emerges here
    from the TLB model rather than from a constant. *)

val one_way :
  System.t -> core:int -> ep:Types.endpoint -> from:Types.tcb -> to_:Types.tcb ->
  int
(** One fastpath message transfer from [from] to [to_] (the receiver
    must be waiting); returns its cost in cycles.  Crossing kernel
    images performs the stack hand-over but none of the flush/pad
    machinery (the paper's artificial inter-colour case, which defers
    those to the partition switch). *)

(** {1 Rendezvous semantics (for blocking tests)} *)

val send : System.t -> core:int -> ep:Types.endpoint -> Types.tcb -> unit
(** If a receiver waits, hand over and make it ready; otherwise block
    the sender on the endpoint's send queue. *)

val recv : System.t -> core:int -> ep:Types.endpoint -> Types.tcb -> bool
(** If a sender waits, complete the transfer and return [true];
    otherwise block the caller on the receive queue and return
    [false]. *)
