(** The per-core execution driver: time-slicing, preemption ticks,
    domain switches.

    Workload bodies are closures invoked once per time slice; a body
    that returns before its slice ends idles the remainder (an "idle"
    workload is just [fun _ -> ()]).  At each slice boundary the driver
    picks the next thread round-robin through the scheduler and runs
    the full {!Domain_switch} sequence, so every protection cost lands
    on the core's cycle counter exactly where a real kernel would put
    it. *)

type body = Uctx.t -> unit

val set_body : Types.tcb -> body -> unit
(** Attach (or replace) the code a thread runs each slice. *)

val make_runnable : System.t -> Types.tcb -> unit
(** Mark ready and enqueue on its core's scheduler. *)

val bind_sched_context : Types.tcb -> Types.sched_context -> unit
(** Bind a scheduling context (MCS, Lyons et al. 2018) to the thread:
    from now on it receives at most [sc_budget] cycles per
    [sc_period]; a depleted thread leaves the ready queue until its
    replenishment time.  The paper's §8 names combining these temporal
    {e integrity} mechanisms with time protection as future work — the
    two compose here because budgets only shorten slices, and every
    slice boundary still runs the full protected switch. *)

val default_slice_us : float
(** 10 ms in the paper's experiments unless stated otherwise; here the
    default slice is 10 ms expressed in platform cycles by {!run}. *)

val run :
  System.t -> core:int -> ?slice_cycles:int -> until:int -> unit -> unit
(** Run the core until its cycle counter reaches [until].  Each
    iteration: switch to the next ready thread (tick path), then run
    its body for one slice.  With no ready thread the current kernel's
    idle thread runs for the slice. *)

val run_slices :
  System.t -> core:int -> ?slice_cycles:int -> slices:int -> unit -> unit
(** Run exactly [slices] time slices. *)

(** {1 Multicore driving}

    Cores in the simulator have independent clocks; "concurrent"
    execution is slice-granular interleaving: in each global round
    every listed core runs one slice.  Cross-core state (shared LLC,
    bus rate estimators, DRAM rows) couples the rounds, which is what
    the cross-core experiments measure. *)

val run_concurrent :
  System.t -> cores:int list -> ?slice_cycles:int -> rounds:int -> unit -> unit
(** Free-running multicore: each core independently schedules its own
    ready threads — domains genuinely share the machine concurrently
    (the cloud scenario's default). *)

val run_coscheduled :
  System.t -> cores:int list -> ?slice_cycles:int -> rounds:int -> unit -> unit
(** Gang scheduling (§3.1.1): in each round one security domain owns
    {e all} the listed cores; cores with no ready thread of that
    domain run its kernel's idle thread.  At no instant do two domains
    execute concurrently, which removes every concurrent-access
    channel by construction.  Domains rotate round-robin. *)
