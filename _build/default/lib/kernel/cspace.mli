(** CSpace operations: capability storage and guarded addressing.

    seL4 stores capabilities in CNodes — arrays of slots — arranged as
    a guarded page table.  A capability address is a word resolved
    MSB-first through the tree: each CNode consumes its guard bits
    (which must match its configured guard) and then [cn_radix] index
    bits; interior slots must hold CNode capabilities.  All of seL4's
    capability transfer is slot-to-slot: copy (same rights), mint
    (reduced rights, CDT child), move (no CDT change) and delete.

    The model matches the paper's usage: the initial task hands
    domains their (possibly clone-right-stripped) Kernel_Image
    capabilities by minting into their CSpaces. *)

val retype_cnode :
  Types.cap -> radix:int -> ?guard:int -> ?guard_bits:int -> unit -> Types.cap
(** A CNode with [2^radix] empty slots from an Untyped capability;
    frames charged are [max 1 (2^radix * 32 / page_size)] (32-byte
    slots, as in seL4).
    @raise Types.Kernel_error [Insufficient_untyped | Wrong_object_type] *)

val the_cnode : Types.cap -> Types.cnode
(** @raise Types.Kernel_error [Wrong_object_type | Invalid_capability] *)

val resolve : Types.cnode -> addr:int -> depth:int -> Types.cnode * int
(** Resolve a capability address to its final (cnode, slot index).
    [depth] is the number of significant bits in [addr], consumed
    MSB-first.  Fails with [Invalid_address] on a guard mismatch, a
    depth underflow/overflow, or an interior slot that is empty or not
    a CNode. *)

val lookup : Types.cnode -> addr:int -> depth:int -> Types.cap option
(** The capability at the address, if any. *)

val insert : Types.cnode -> addr:int -> depth:int -> Types.cap -> unit
(** Place an existing capability into an empty slot.
    @raise Types.Kernel_error [Slot_occupied | Invalid_address] *)

val copy :
  src:Types.cnode * int -> dst:Types.cnode * int -> unit -> Types.cap
(** Copy the capability in [src] into the empty [dst] slot: a CDT
    child with the same rights.  Returns the new capability. *)

val mint :
  src:Types.cnode * int ->
  dst:Types.cnode * int ->
  rights:Types.rights ->
  unit ->
  Types.cap
(** Like {!copy} but with (possibly) reduced rights and the clone
    right always stripped — the §4.1 hand-out pattern. *)

val move : src:Types.cnode * int -> dst:Types.cnode * int -> unit -> unit
(** Relocate a capability between slots; no CDT change. *)

val delete_slot : System.t -> core:int -> Types.cnode * int -> unit
(** Delete the capability in the slot ({!Objects.delete} semantics)
    and empty the slot; a no-op on an empty slot. *)

val slot : Types.cnode * int -> Types.cap option
