let same_obj a b =
  match (a, b) with
  | Types.Obj_untyped x, Types.Obj_untyped y -> x.Types.u_id = y.Types.u_id
  | Types.Obj_frame x, Types.Obj_frame y -> x.Types.f_id = y.Types.f_id
  | Types.Obj_tcb x, Types.Obj_tcb y -> x.Types.t_id = y.Types.t_id
  | Types.Obj_endpoint x, Types.Obj_endpoint y -> x.Types.ep_id = y.Types.ep_id
  | Types.Obj_notification x, Types.Obj_notification y -> x.Types.nf_id = y.Types.nf_id
  | Types.Obj_vspace x, Types.Obj_vspace y -> x.Types.vs_id = y.Types.vs_id
  | Types.Obj_kernel_image x, Types.Obj_kernel_image y -> x.Types.ki_id = y.Types.ki_id
  | Types.Obj_kernel_memory x, Types.Obj_kernel_memory y -> x.Types.km_id = y.Types.km_id
  | Types.Obj_irq_handler x, Types.Obj_irq_handler y -> x.Types.ih_irq = y.Types.ih_irq
  | Types.Obj_sched_context x, Types.Obj_sched_context y ->
      x.Types.sc_id = y.Types.sc_id
  | Types.Obj_cnode x, Types.Obj_cnode y -> x.Types.cn_id = y.Types.cn_id
  | _ -> false

let is_owner cap =
  match cap.Types.parent with
  | None -> true
  | Some p -> not (same_obj p.Types.target cap.Types.target)

(* The Untyped an object was carved from: nearest ancestor capability
   whose target is an Untyped different from the object itself. *)
let rec parent_untyped cap =
  match cap.Types.parent with
  | None -> None
  | Some p -> begin
      match p.Types.target with
      | Types.Obj_untyped u when not (same_obj p.Types.target cap.Types.target) ->
          Some u
      | _ -> parent_untyped p
    end

let return_frames cap frames =
  match parent_untyped cap with
  | Some u -> u.Types.u_free <- frames @ u.Types.u_free
  | None -> ()

let destroy_object sys ~core cap =
  match cap.Types.target with
  | Types.Obj_kernel_image _ -> Clone.destroy sys ~core cap
  | Types.Obj_kernel_memory km -> begin
      (* §4.4: destroying active Kernel_Memory invalidates the kernel. *)
      (match km.Types.km_image with
      | Some ki when ki.Types.ki_state = Types.Ki_active ->
          (* The image cap is a CDT node somewhere; destroy through the
             kernel path directly since we hold the object. *)
          let tmp = Capability.mk_root (Types.Obj_kernel_image ki) in
          Clone.destroy sys ~core tmp
      | Some _ | None -> ());
      km.Types.km_image <- None;
      return_frames cap km.Types.km_frames
    end
  | Types.Obj_tcb tcb ->
      tcb.Types.t_state <- Types.Ts_inactive;
      Sched.remove (System.sched sys) ~core:tcb.Types.t_core tcb;
      return_frames cap tcb.Types.t_frames
  | Types.Obj_endpoint ep ->
      List.iter
        (fun t -> t.Types.t_state <- Types.Ts_ready)
        (ep.Types.ep_send_q @ ep.Types.ep_recv_q);
      ep.Types.ep_send_q <- [];
      ep.Types.ep_recv_q <- [];
      return_frames cap ep.Types.ep_frames
  | Types.Obj_notification nf ->
      List.iter (fun t -> t.Types.t_state <- Types.Ts_ready) nf.Types.nf_waiters;
      nf.Types.nf_waiters <- [];
      return_frames cap nf.Types.nf_frames
  | Types.Obj_frame f ->
      (match f.Types.f_mapping with
      | Some (vs, vpn) -> Hashtbl.remove vs.Types.vs_pages vpn
      | None -> ());
      return_frames cap [ f.Types.f_frame ]
  | Types.Obj_vspace vs ->
      Hashtbl.reset vs.Types.vs_pages;
      return_frames cap []
  | Types.Obj_untyped u ->
      (* Free frames flow back to the parent; retyped children must
         have been deleted first (revocation order guarantees it). *)
      return_frames cap u.Types.u_free;
      u.Types.u_free <- []
  | Types.Obj_irq_handler h -> h.Types.ih_kernel <- None
  | Types.Obj_sched_context sc ->
      (* Unbind from any thread still holding it. *)
      List.iter
        (fun t ->
          match t.Types.t_sc with
          | Some s when s.Types.sc_id = sc.Types.sc_id -> t.Types.t_sc <- None
          | Some _ | None -> ())
        (System.all_tcbs sys);
      return_frames cap sc.Types.sc_frames
  | Types.Obj_cnode cn ->
      (* The capabilities stored in the slots die with their storage. *)
      Array.iteri
        (fun i slot ->
          match slot with
          | Some c ->
              if Capability.is_valid c then Capability.invalidate c;
              cn.Types.cn_slots.(i) <- None
          | None -> ())
        cn.Types.cn_slots;
      return_frames cap cn.Types.cn_frames

let delete sys ~core cap =
  Capability.ensure_valid cap;
  let owner = is_owner cap in
  (* Descendants alias the object (or were carved from it); they go
     first, leaves before ancestors. *)
  if owner then
    List.iter
      (fun c ->
        if Capability.is_valid c then begin
          if is_owner c then destroy_object sys ~core c;
          Capability.invalidate c
        end)
      (Capability.descendants cap);
  if Capability.is_valid cap then begin
    if owner then destroy_object sys ~core cap;
    Capability.invalidate cap
  end

let revoke sys ~core cap =
  Capability.ensure_valid cap;
  List.iter
    (fun c ->
      if Capability.is_valid c then begin
        if is_owner c then destroy_object sys ~core c;
        Capability.invalidate c
      end)
    (Capability.descendants cap)
