(** System assembly: boot, partition into coloured domains, clone
    kernels, spawn threads.

    This plays the role of the paper's initial user process (§3.3): it
    receives all free memory as Untyped plus the Kernel_Image master
    capability, splits memory into per-domain coloured pools, clones a
    kernel for each partition out of the domain's own pool, and starts
    threads bound to those kernels.  Everything it does goes through
    the same capability operations userland would use. *)

type domain = {
  dom_id : int;
  dom_colours : Colour.set;
  dom_pool : Types.cap;  (** the domain's Untyped pool *)
  dom_kernel_cap : Types.cap;
  dom_kernel : Types.kimage;
  dom_vspace : Types.vspace;
  mutable dom_threads : Types.tcb list;
}

type booted = {
  sys : System.t;
  root : Types.cap;  (** root Untyped (whatever was not given to domains) *)
  master : Types.cap;  (** Kernel_Image master capability *)
  domains : domain array;
}

val boot :
  ?colour_percent:int ->
  ?domains:int ->
  platform:Tp_hw.Platform.t ->
  config:Config.t ->
  unit ->
  booted
(** Boot and build [domains] (default 2) security domains.

    With [config.colour_user] the available colours (restricted to the
    first [colour_percent]%, default 100) are split evenly between
    domains; otherwise domains share all colours (frames split by
    count).  With [config.clone_kernel] each domain gets a kernel
    cloned from the master into its own pool; otherwise all domains
    run on the initial kernel. *)

val spawn :
  booted -> domain -> ?prio:int -> ?core:int -> Exec.body -> Types.tcb
(** Create a thread in the domain (TCB from the domain's pool), bind
    its VSpace, kernel and domain tag, attach the body and make it
    runnable. *)

val alloc_pages : booted -> domain -> pages:int -> int
(** Allocate and map [pages] pages from the domain's pool into its
    VSpace; returns the (page-aligned) base virtual address.
    @raise Types.Kernel_error [Insufficient_untyped] *)

val alloc_pages_where :
  booted -> domain -> pred:(int -> bool) -> pages:int -> int
(** Like {!alloc_pages} but only frames satisfying [pred] (frame
    number), e.g. attacker-chosen LLC set groups.
    @raise Types.Kernel_error [Insufficient_untyped] when the pool has
    too few matching frames — which is exactly what happens to a spy in
    a coloured system. *)

val map_shared : booted -> from_dom:domain -> to_dom:domain -> pages:int -> int * int
(** Set up user-level shared memory between two domains (§6.1: "shared
    memory can be set up with a dedicated colour").  Takes [pages]
    frames from [from_dom]'s pool — so they carry that domain's
    colours, the "dedicated colour" being the sharer's — and maps them
    into both VSpaces; returns the two base virtual addresses.  The
    paper's caveat applies: the resulting channel must be handled by
    deterministic user-level access; the kernel only provides the
    mapping. *)

val subdivide :
  booted -> domain -> parts:int -> core:int -> domain list
(** Nested partitioning (§3.3: "a partition can sub-divide with new
    kernel clones, as long as it has sufficient Untyped memory and
    more than one page colour left").  Splits the domain's remaining
    pool by colour into [parts] sub-pools, clones a kernel for each
    from the domain's own kernel capability (which must carry the
    clone right), and returns the new sub-domains.
    @raise Types.Kernel_error [Insufficient_colours] with fewer
    colours than [parts], [No_clone_right] if the domain's kernel
    capability cannot clone. *)

val new_notification : booted -> domain -> Types.notification
(** Retype a notification object from the domain's pool. *)

val new_endpoint : booted -> domain -> Types.endpoint
