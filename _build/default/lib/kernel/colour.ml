type set = int

let n_colours p = Tp_hw.Platform.colours p

let colour_of_frame ~n_colours frame = frame mod n_colours

let all ~n_colours = (1 lsl n_colours) - 1
let empty = 0
let mem s c = s land (1 lsl c) <> 0
let add s c = s lor (1 lsl c)

let count s =
  let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
  go 0 s

let inter a b = a land b
let union a b = a lor b
let disjoint a b = a land b = 0

let of_list l = List.fold_left add empty l

let to_list s =
  let rec go acc c s =
    if s = 0 then List.rev acc
    else go (if s land 1 <> 0 then c :: acc else acc) (c + 1) (s lsr 1)
  in
  go [] 0 s

let split ~n_colours ~parts =
  assert (parts > 0 && parts <= n_colours);
  let per = n_colours / parts in
  let extra = n_colours mod parts in
  let rec build part start acc =
    if part = parts then List.rev acc
    else begin
      let size = per + if part < extra then 1 else 0 in
      let s = of_list (List.init size (fun i -> start + i)) in
      build (part + 1) (start + size) (s :: acc)
    end
  in
  build 0 0 []

let fraction ~n_colours ~percent =
  assert (percent > 0 && percent <= 100);
  let k = Stdlib.max 1 (n_colours * percent / 100) in
  of_list (List.init k Fun.id)

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))
