let the_cnode cap =
  Capability.ensure_valid cap;
  match cap.Types.target with
  | Types.Obj_cnode cn -> cn
  | _ -> raise (Types.Kernel_error Types.Wrong_object_type)

let slot_bytes = 32

let retype_cnode ucap ~radix ?(guard = 0) ?(guard_bits = 0) () =
  assert (radix > 0 && radix < 20);
  assert (guard_bits >= 0 && guard >= 0);
  let bytes = (1 lsl radix) * slot_bytes in
  let frames_needed = max 1 ((bytes + Tp_hw.Defs.page_size - 1) / Tp_hw.Defs.page_size) in
  let frames = Retype.take_frames ucap frames_needed in
  let cn =
    {
      Types.cn_id = Types.fresh_id ();
      cn_radix = radix;
      cn_guard = guard;
      cn_guard_bits = guard_bits;
      cn_slots = Array.make (1 lsl radix) None;
      cn_frames = frames;
    }
  in
  let u = Retype.the_untyped ucap in
  u.Types.u_retyped <- Types.Obj_cnode cn :: u.Types.u_retyped;
  let cap =
    {
      Types.cap_id = Types.fresh_id ();
      target = Types.Obj_cnode cn;
      rights = Types.full_rights;
      clone_right = false;
      parent = Some ucap;
      children = [];
      valid = true;
    }
  in
  ucap.Types.children <- cap :: ucap.Types.children;
  cap

let invalid () = raise (Types.Kernel_error Types.Invalid_address)

let rec resolve cn ~addr ~depth =
  let consumed = cn.Types.cn_guard_bits + cn.Types.cn_radix in
  if depth < consumed then invalid ();
  (* Guard check on the top guard_bits of the remaining address. *)
  let guard = (addr lsr (depth - cn.Types.cn_guard_bits)) land ((1 lsl cn.Types.cn_guard_bits) - 1) in
  if guard <> cn.Types.cn_guard then invalid ();
  let index =
    (addr lsr (depth - consumed)) land ((1 lsl cn.Types.cn_radix) - 1)
  in
  let remaining = depth - consumed in
  if remaining = 0 then (cn, index)
  else begin
    match cn.Types.cn_slots.(index) with
    | Some { Types.target = Types.Obj_cnode next; valid = true; _ } ->
        resolve next ~addr ~depth:remaining
    | Some _ | None -> invalid ()
  end

let lookup cn ~addr ~depth =
  let node, i = resolve cn ~addr ~depth in
  node.Types.cn_slots.(i)

let insert cn ~addr ~depth cap =
  let node, i = resolve cn ~addr ~depth in
  match node.Types.cn_slots.(i) with
  | Some _ -> raise (Types.Kernel_error Types.Slot_occupied)
  | None -> node.Types.cn_slots.(i) <- Some cap

let slot (cn, i) = cn.Types.cn_slots.(i)

let src_cap (cn, i) =
  match cn.Types.cn_slots.(i) with
  | Some c when Capability.is_valid c -> c
  | Some _ | None -> raise (Types.Kernel_error Types.Invalid_address)

let put_empty (cn, i) cap =
  match cn.Types.cn_slots.(i) with
  | Some _ -> raise (Types.Kernel_error Types.Slot_occupied)
  | None -> cn.Types.cn_slots.(i) <- Some cap

let copy ~src ~dst () =
  let c = src_cap src in
  let child = Capability.derive ~clone_right:c.Types.clone_right c in
  put_empty dst child;
  child

let mint ~src ~dst ~rights () =
  let c = src_cap src in
  let reduce a b =
    Types.
      {
        read = a.read && b.read;
        write = a.write && b.write;
        grant = a.grant && b.grant;
      }
  in
  let child =
    Capability.derive ~rights:(reduce rights c.Types.rights) ~clone_right:false c
  in
  put_empty dst child;
  child

let move ~src ~dst () =
  let c = src_cap src in
  put_empty dst c;
  let cn, i = src in
  cn.Types.cn_slots.(i) <- None

let delete_slot sys ~core (cn, i) =
  match cn.Types.cn_slots.(i) with
  | Some c ->
      if Capability.is_valid c then Objects.delete sys ~core c;
      cn.Types.cn_slots.(i) <- None
  | None -> ()
