let src = Logs.Src.create "tp.kernel" ~doc:"Time-protection kernel events"

module Log = (val Logs.src_log src : Logs.LOG)

let kid ki =
  Printf.sprintf "#%d%s" ki.Types.ki_id
    (if ki.Types.ki_is_initial then "(initial)" else "")

let clone ki ~cost_cycles =
  Log.info (fun m ->
      m "kernel_clone -> image %s (asid %d, %d cycles)" (kid ki)
        ki.Types.ki_asid cost_cycles)

let destroy ki = Log.info (fun m -> m "kernel_destroy %s" (kid ki))

let set_int ki ~irq = Log.info (fun m -> m "kernel_set_int %s irq=%d" (kid ki) irq)

let switch ~core ~from_kernel ~to_kernel ~total =
  Log.debug (fun m ->
      m "core %d: switch %s -> %s (%d cycles)" core (kid from_kernel)
        (kid to_kernel) total)
