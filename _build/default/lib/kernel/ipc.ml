let touch_frame_lines sys ~core frames ~lines ~kind =
  let p = System.platform sys in
  let line = p.Tp_hw.Platform.line in
  let asid = System.current_asid sys ~core in
  let global = System.kernel_mappings_global sys in
  match frames with
  | f :: _ ->
      for l = 0 to lines - 1 do
        let pa = Phys.frame_addr f + (l * line) in
        ignore
          (Tp_hw.Machine.access (System.machine sys) ~core ~asid ~global ~vaddr:pa
             ~paddr:pa ~kind ())
      done
  | [] -> ()

let one_way sys ~core ~ep ~from ~to_ =
  let m = System.machine sys in
  let pc = System.per_core sys core in
  let start = System.now sys ~core in
  let from_kernel =
    match from.Types.t_kernel with Some k -> k | None -> pc.System.cur_kernel
  in
  let to_kernel =
    match to_.Types.t_kernel with Some k -> k | None -> from_kernel
  in
  (* Trap into the sender's kernel. *)
  Tp_hw.Machine.add_cycles m ~core Syscalls.trap_cost;
  ignore
    (System.touch_image sys ~core from_kernel ~region:System.Text
       ~off:Layout.entry_stub.Layout.t_off ~len:Layout.entry_stub.Layout.t_len
       ~kind:Tp_hw.Defs.Fetch);
  ignore
    (System.touch_image sys ~core from_kernel ~region:System.Text
       ~off:Layout.handler_ipc.Layout.t_off ~len:Layout.handler_ipc.Layout.t_len
       ~kind:Tp_hw.Defs.Fetch);
  ignore
    (System.touch_image sys ~core from_kernel ~region:System.Stack ~off:0 ~len:128
       ~kind:Tp_hw.Defs.Write);
  (* Endpoint and both TCBs. *)
  touch_frame_lines sys ~core ep.Types.ep_frames ~lines:2 ~kind:Tp_hw.Defs.Write;
  touch_frame_lines sys ~core from.Types.t_frames ~lines:3 ~kind:Tp_hw.Defs.Read;
  touch_frame_lines sys ~core to_.Types.t_frames ~lines:3 ~kind:Tp_hw.Defs.Write;
  ignore
    (System.touch_shared sys ~core Layout.Cur_pointers ~kind:Tp_hw.Defs.Write ());
  (* Address-space switch: the receiver becomes current, so kernel
     accesses from here run under its ASID. *)
  pc.System.cur_thread <- Some to_;
  if to_kernel.Types.ki_id <> from_kernel.Types.ki_id then begin
    (* Kernel hand-over without the protection steps (deferred to the
       partition switch in a padded system). *)
    ignore
      (System.touch_image sys ~core from_kernel ~region:System.Stack ~off:0
         ~len:128 ~kind:Tp_hw.Defs.Read);
    ignore
      (System.touch_image sys ~core to_kernel ~region:System.Stack ~off:0 ~len:128
         ~kind:Tp_hw.Defs.Write);
    pc.System.cur_kernel <- to_kernel;
    from_kernel.Types.ki_running_on.(core) <- false;
    to_kernel.Types.ki_running_on.(core) <- true
  end;
  (* Return to user in the receiver's address space. *)
  ignore
    (System.touch_image sys ~core to_kernel ~region:System.Text
       ~off:Layout.entry_stub.Layout.t_off ~len:Layout.entry_stub.Layout.t_len
       ~kind:Tp_hw.Defs.Fetch);
  Tp_hw.Machine.add_cycles m ~core Syscalls.trap_cost;
  System.now sys ~core - start

let send sys ~core ~ep tcb =
  match ep.Types.ep_recv_q with
  | receiver :: rest ->
      ep.Types.ep_recv_q <- rest;
      ignore (one_way sys ~core ~ep ~from:tcb ~to_:receiver);
      receiver.Types.t_state <- Types.Ts_ready;
      Sched.enqueue (System.sched sys) ~core:receiver.Types.t_core receiver
  | [] ->
      tcb.Types.t_state <- Types.Ts_blocked_send;
      ep.Types.ep_send_q <- ep.Types.ep_send_q @ [ tcb ]

let recv sys ~core ~ep tcb =
  match ep.Types.ep_send_q with
  | sender :: rest ->
      ep.Types.ep_send_q <- rest;
      ignore (one_way sys ~core ~ep ~from:sender ~to_:tcb);
      sender.Types.t_state <- Types.Ts_ready;
      Sched.enqueue (System.sched sys) ~core:sender.Types.t_core sender;
      true
  | [] ->
      tcb.Types.t_state <- Types.Ts_blocked_recv;
      ep.Types.ep_recv_q <- ep.Types.ep_recv_q @ [ tcb ];
      false
