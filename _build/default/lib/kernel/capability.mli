(** Capability creation and the capability derivation tree (CDT).

    Pure tree bookkeeping: minting root capabilities, deriving children
    with (possibly) reduced rights, and walking/pruning the tree.
    Object destruction semantics (what happens to the object when its
    capabilities go away) live in {!Objects}, which layers revocation
    on top of these primitives. *)

val mk_root : ?clone_right:bool -> Types.obj -> Types.cap
(** A fresh root capability with full rights. *)

val derive :
  ?rights:Types.rights -> ?clone_right:bool -> Types.cap -> Types.cap
(** [derive parent] mints a child capability in the CDT.  Rights
    default to the parent's; the clone right can only be kept if the
    parent has it (stripping it is how the initial process prevents
    others from cloning kernels, §4.1).
    @raise Types.Kernel_error [Invalid_capability] if the parent is no
    longer valid. *)

val is_valid : Types.cap -> bool

val ensure_valid : Types.cap -> unit
(** @raise Types.Kernel_error [Invalid_capability] *)

val descendants : Types.cap -> Types.cap list
(** All transitive children, depth-first, leaves before ancestors (the
    order in which revocation must invalidate them). *)

val invalidate : Types.cap -> unit
(** Mark one capability invalid and detach it from its parent. *)
