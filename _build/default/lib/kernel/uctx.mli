(** User-mode execution context.

    A workload body receives a [Uctx.t] and performs all its work
    through it: memory accesses, branches, syscalls, and cycle-counter
    reads (the attacker's clock).  After every operation the context

    - delivers any unmasked device interrupt whose timer has fired
      (charging the kernel's IRQ-handling path to this core — the
      observable "jump" of the Figure 6 receiver), and
    - raises {!Preempted} once the time slice is exhausted,

    so preemption is involuntary from the body's point of view: any
    operation can be its last.  Bodies therefore keep their persistent
    state in captured refs. *)

exception Preempted

type t

val make : System.t -> core:int -> Types.tcb -> slice_end:int -> t
(** Used by {!Exec}; bodies never construct contexts. *)

val sys : t -> System.t
val core : t -> int
val tcb : t -> Types.tcb

val now : t -> int
(** Read the cycle counter (rdtsc / CCNT). *)

val read : t -> int -> unit
(** Load from a virtual address. *)

val write : t -> int -> unit
(** Store to a virtual address. *)

val fetch : t -> int -> unit
(** Execute straight-line code at a virtual address (I-side access). *)

val jump : t -> src:int -> target:int -> unit
(** Taken jump from [src] to [target] (I-fetch + BTB). *)

val cond_branch : t -> addr:int -> taken:bool -> unit
(** Conditional branch (I-fetch + direction predictor). *)

val clflush : t -> int -> unit
(** Flush one cache line by virtual address (x86 [clflush] / Arm v8
    [DC CIVAC] — user-mode instructions, the enabler of Flush+Reload
    and DRAMA-style attacks). *)

val compute : t -> int -> unit
(** Spin for [n] cycles of pure computation (no memory traffic). *)

val syscall : t -> Syscalls.call -> unit

val remaining : t -> int
(** Cycles left in the current slice (never negative). *)

val idle_rest : t -> unit
(** Sleep until the end of the slice, still accepting interrupts at
    their fire times; always raises {!Preempted} at the slice end. *)
