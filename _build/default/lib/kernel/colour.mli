(** Page colours and colour sets.

    A frame's colour is determined by the physical-address bits that
    select the set of the partitioning cache (§2.3): with page size
    [P], cache size [S] and associativity [w] there are [S/(wP)]
    colours, and a frame of colour [c] can only ever occupy the
    corresponding 1/colours slice of that cache.  On the Haswell the
    partitioning cache is the private L2 (8 colours), which implicitly
    partitions the LLC; on the Sabre it is the shared 1 MiB L2
    (16 colours).

    A colour set is a bitmask over colours; security domains receive
    disjoint sets. *)

type set = int
(** Bitmask; bit [c] = colour [c] is in the set. *)

val n_colours : Tp_hw.Platform.t -> int

val colour_of_frame : n_colours:int -> int -> int
(** Colour of a physical frame number. *)

val all : n_colours:int -> set

val empty : set

val mem : set -> int -> bool

val add : set -> int -> set

val count : set -> int

val inter : set -> set -> set

val union : set -> set -> set

val disjoint : set -> set -> bool

val of_list : int list -> set

val to_list : set -> int list

val split : n_colours:int -> parts:int -> set list
(** Partition all colours into [parts] near-equal disjoint sets, in
    ascending colour order (the "50% of available colours" split of
    §5.2 is [split ~parts:2]). *)

val fraction : n_colours:int -> percent:int -> set
(** The first [percent]% of colours, at least one (the 75%/50% cache
    shares of Figure 7). *)

val pp : Format.formatter -> set -> unit
