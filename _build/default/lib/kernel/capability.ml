let mk_root ?(clone_right = false) target =
  {
    Types.cap_id = Types.fresh_id ();
    target;
    rights = Types.full_rights;
    clone_right;
    parent = None;
    children = [];
    valid = true;
  }

let is_valid c = c.Types.valid

let ensure_valid c =
  if not c.Types.valid then raise (Types.Kernel_error Types.Invalid_capability)

let derive ?rights ?(clone_right = false) parent =
  ensure_valid parent;
  let rights = Option.value rights ~default:parent.Types.rights in
  let child =
    {
      Types.cap_id = Types.fresh_id ();
      target = parent.Types.target;
      rights;
      clone_right = clone_right && parent.Types.clone_right;
      parent = Some parent;
      children = [];
      valid = true;
    }
  in
  parent.Types.children <- child :: parent.Types.children;
  child

(* Post-order: leaves precede ancestors, the order revocation needs. *)
let descendants cap =
  let rec post c = List.concat_map post c.Types.children @ [ c ] in
  List.concat_map post cap.Types.children

let invalidate c =
  c.Types.valid <- false;
  match c.Types.parent with
  | None -> ()
  | Some p ->
      p.Types.children <-
        List.filter (fun k -> k.Types.cap_id <> c.Types.cap_id) p.Types.children
