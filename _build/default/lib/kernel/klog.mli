(** Kernel event logging.

    A [Logs] source (["tp.kernel"]) for the security-relevant kernel
    events: clone, destruction, IRQ association, domain switches.
    Silent unless the embedding application installs a reporter and
    raises the level (e.g. [tpsim -v]); the experiments never enable
    it, so logging cannot perturb measurements. *)

val src : Logs.src

val clone : Types.kimage -> cost_cycles:int -> unit
val destroy : Types.kimage -> unit
val set_int : Types.kimage -> irq:int -> unit

val switch :
  core:int -> from_kernel:Types.kimage -> to_kernel:Types.kimage ->
  total:int -> unit
(** Logged at debug level (one per tick — voluminous). *)
