lib/kernel/uctx.ml: Config Irq List Stdlib Syscalls System Tp_hw Types
