lib/kernel/uctx.mli: Syscalls System Types
