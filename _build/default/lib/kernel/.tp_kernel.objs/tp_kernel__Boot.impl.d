lib/kernel/boot.ml: Array Capability Clone Colour Config Exec List Phys Retype Stdlib System Tp_hw Types
