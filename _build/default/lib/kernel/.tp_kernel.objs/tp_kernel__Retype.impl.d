lib/kernel/retype.ml: Capability Colour Hashtbl Layout List Tp_hw Types
