lib/kernel/cspace.ml: Array Capability Objects Retype Tp_hw Types
