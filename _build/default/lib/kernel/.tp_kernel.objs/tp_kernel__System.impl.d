lib/kernel/system.ml: Array Config Hashtbl Irq Layout List Phys Sched Tp_hw Types
