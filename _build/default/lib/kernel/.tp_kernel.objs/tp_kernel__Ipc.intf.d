lib/kernel/ipc.mli: System Types
