lib/kernel/audit.ml: Format Fun Hashtbl Layout List System Tp_hw
