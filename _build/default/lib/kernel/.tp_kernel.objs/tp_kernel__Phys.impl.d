lib/kernel/phys.ml: Array Colour List Tp_hw
