lib/kernel/irq.ml: Array List Types
