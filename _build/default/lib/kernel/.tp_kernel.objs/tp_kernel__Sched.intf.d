lib/kernel/sched.mli: Types
