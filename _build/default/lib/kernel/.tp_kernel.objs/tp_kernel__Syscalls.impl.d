lib/kernel/syscalls.ml: Irq Layout List Phys Sched System Tp_hw Types
