lib/kernel/exec.ml: Domain_switch Hashtbl List Option Sched Stdlib System Tp_hw Types Uctx
