lib/kernel/colour.mli: Format Tp_hw
