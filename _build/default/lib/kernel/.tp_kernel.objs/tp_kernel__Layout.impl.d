lib/kernel/layout.ml: List Stdlib Tp_hw
