lib/kernel/sched.ml: Array Hashtbl List Queue Types
