lib/kernel/domain_switch.ml: Array Config Irq Klog Layout List Phys System Tp_hw Types
