lib/kernel/boot.mli: Colour Config Exec System Tp_hw Types
