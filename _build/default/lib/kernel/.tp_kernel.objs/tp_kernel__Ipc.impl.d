lib/kernel/ipc.ml: Array Layout Phys Sched Syscalls System Tp_hw Types
