lib/kernel/config.ml: Format Fun List Printf String Tp_hw
