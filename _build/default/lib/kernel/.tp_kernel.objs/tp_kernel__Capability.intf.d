lib/kernel/capability.mli: Types
