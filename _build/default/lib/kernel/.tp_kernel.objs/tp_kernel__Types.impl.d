lib/kernel/types.ml: Array Colour Hashtbl
