lib/kernel/system.mli: Config Irq Layout Phys Sched Tp_hw Types
