lib/kernel/clone.ml: Array Capability Config Irq Klog Layout List Sched System Tp_hw Types
