lib/kernel/klog.mli: Logs Types
