lib/kernel/syscalls.mli: System Types
