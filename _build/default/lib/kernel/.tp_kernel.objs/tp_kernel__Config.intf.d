lib/kernel/config.mli: Format Tp_hw
