lib/kernel/retype.mli: Colour Tp_hw Types
