lib/kernel/objects.ml: Array Capability Clone Hashtbl List Sched System Types
