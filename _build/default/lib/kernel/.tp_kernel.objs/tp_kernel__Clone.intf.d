lib/kernel/clone.mli: System Types
