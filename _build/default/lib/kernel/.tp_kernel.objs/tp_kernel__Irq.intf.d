lib/kernel/irq.mli: Types
