lib/kernel/colour.ml: Format Fun List Stdlib String Tp_hw
