lib/kernel/exec.mli: System Types Uctx
