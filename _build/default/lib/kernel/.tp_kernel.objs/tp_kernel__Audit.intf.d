lib/kernel/audit.mli: Format Layout System Tp_hw
