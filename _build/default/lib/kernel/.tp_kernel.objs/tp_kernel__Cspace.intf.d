lib/kernel/cspace.mli: System Types
