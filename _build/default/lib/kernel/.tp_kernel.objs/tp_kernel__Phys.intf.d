lib/kernel/phys.mli: Colour Tp_hw
