lib/kernel/objects.mli: System Types
