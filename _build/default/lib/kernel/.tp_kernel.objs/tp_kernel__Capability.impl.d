lib/kernel/capability.ml: List Option Types
