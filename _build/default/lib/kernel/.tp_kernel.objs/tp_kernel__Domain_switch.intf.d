lib/kernel/domain_switch.mli: System Types
