lib/kernel/klog.ml: Logs Printf Types
