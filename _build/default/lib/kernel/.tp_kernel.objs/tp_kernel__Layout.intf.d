lib/kernel/layout.mli: Tp_hw
