(** Capability deletion and revocation with object destruction.

    Deleting the {e owning} capability of an object (the one minted at
    retype time) destroys the object and returns its frames to the
    parent Untyped; deleting a derived copy only invalidates that copy.
    Revocation deletes all CDT descendants of a capability — so
    revoking an Untyped's capability reclaims everything carved from
    it, and revoking a Kernel_Image capability destroys all kernels
    cloned from it (§4.1). *)

val delete : System.t -> core:int -> Types.cap -> unit
(** Invalidate the capability; destroy the object if this was the
    owning capability.  Destroying a [Kernel_Image] follows the full
    §4.4 sequence via {!Clone.destroy}; destroying a [Kernel_Memory]
    that has an image bound to it destroys that kernel first (§4.4:
    "Destroying active Kernel_Memory also invalidates the kernel"). *)

val revoke : System.t -> core:int -> Types.cap -> unit
(** Delete all CDT descendants (leaves first); the capability itself
    stays valid. *)

val is_owner : Types.cap -> bool
(** Whether this capability owns its object (its parent refers to a
    different object, i.e. it was minted at retype/clone time). *)
