(** Physical frame accounting.

    Tracks which frames exist, which are free, and their colours.  The
    kernel reserves a boot region for the initial kernel image and the
    residual shared data; everything else becomes the initial Untyped
    memory handed to the first user process (§2.4). *)

type t

val create : Tp_hw.Platform.t -> t

val n_frames : t -> int

val n_colours : t -> int

val colour_of : t -> int -> int
(** Colour of a frame number. *)

val reserve_boot : t -> frames:int -> int
(** Reserve [frames] contiguous frames from the bottom for the boot
    image; returns the base frame (always 0 on first call).  Can only
    be called before any other allocation. *)

val alloc : t -> ?colours:Colour.set -> unit -> int option
(** Allocate a free frame, optionally restricted to a colour set.
    Frames are handed out lowest-first, which keeps allocation
    deterministic. *)

val alloc_many : t -> ?colours:Colour.set -> int -> int list option
(** All-or-nothing allocation of [n] frames. *)

val free : t -> int -> unit
(** Return a frame.  Double-free is an assertion failure. *)

val free_frames : t -> int
(** Number of currently free frames. *)

val free_frames_of_colour : t -> int -> int

val frame_addr : int -> int
(** Physical byte address of a frame. *)
