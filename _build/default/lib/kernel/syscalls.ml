type call =
  | Signal of Types.notification
  | Poll of Types.notification
  | Set_priority of Types.tcb * int
  | Yield
  | Set_timeout of { irq : int; after : int }

let trap_cost = 120

let current_kernel sys ~core = (System.per_core sys core).System.cur_kernel

let fetch_text sys ~core ki (r : Layout.text_range) =
  ignore
    (System.touch_image sys ~core ki ~region:System.Text ~off:r.Layout.t_off
       ~len:r.Layout.t_len ~kind:Tp_hw.Defs.Fetch)

let touch_data sys ~core ki ~off ~len ~kind =
  ignore (System.touch_image sys ~core ki ~region:System.Data ~off ~len ~kind)

let touch_stack sys ~core ki =
  (* Top few lines of the kernel stack. *)
  ignore
    (System.touch_image sys ~core ki ~region:System.Stack ~off:0 ~len:256
       ~kind:Tp_hw.Defs.Write)

let touch_object_frames sys ~core frames ~lines ~kind =
  let p = System.platform sys in
  let line = p.Tp_hw.Platform.line in
  let asid = System.current_asid sys ~core in
  let global = System.kernel_mappings_global sys in
  List.iteri
    (fun i f ->
      if i = 0 then
        for l = 0 to lines - 1 do
          let pa = Phys.frame_addr f + (l * line) in
          ignore
            (Tp_hw.Machine.access (System.machine sys) ~core ~asid ~global
               ~vaddr:pa ~paddr:pa ~kind ())
        done)
    frames

let entry sys ~core ki =
  Tp_hw.Machine.add_cycles (System.machine sys) ~core trap_cost;
  fetch_text sys ~core ki Layout.entry_stub;
  touch_stack sys ~core ki;
  ignore
    (System.touch_shared sys ~core Layout.Cur_pointers ~kind:Tp_hw.Defs.Read ())

let wake sys ~core tcb =
  tcb.Types.t_state <- Types.Ts_ready;
  Sched.enqueue (System.sched sys) ~core:tcb.Types.t_core tcb;
  (* Enqueue touches the priority's ready-queue head and the bitmap in
     the shared region. *)
  ignore
    (System.touch_shared sys ~core Layout.Sched_queues ~off:(tcb.Types.t_prio * 16)
       ~len:16 ~kind:Tp_hw.Defs.Write ());
  ignore (System.touch_shared sys ~core Layout.Sched_bitmap ~kind:Tp_hw.Defs.Write ())

let execute sys ~core tcb call =
  let ki =
    match tcb.Types.t_kernel with
    | Some k -> k
    | None -> current_kernel sys ~core
  in
  entry sys ~core ki;
  (match call with
  | Signal nf ->
      fetch_text sys ~core ki Layout.handler_signal;
      touch_data sys ~core ki ~off:0x100 ~len:128 ~kind:Tp_hw.Defs.Write;
      touch_object_frames sys ~core nf.Types.nf_frames ~lines:2
        ~kind:Tp_hw.Defs.Write;
      nf.Types.nf_word <- nf.Types.nf_word lor 1;
      let waiters = nf.Types.nf_waiters in
      nf.Types.nf_waiters <- [];
      List.iter (wake sys ~core) waiters
  | Poll nf ->
      fetch_text sys ~core ki Layout.handler_poll;
      touch_object_frames sys ~core nf.Types.nf_frames ~lines:1
        ~kind:Tp_hw.Defs.Read;
      nf.Types.nf_word <- 0
  | Set_priority (target, prio) ->
      fetch_text sys ~core ki Layout.handler_set_priority;
      touch_data sys ~core ki ~off:0x300 ~len:192 ~kind:Tp_hw.Defs.Write;
      touch_object_frames sys ~core target.Types.t_frames ~lines:4
        ~kind:Tp_hw.Defs.Write;
      let was_queued =
        Sched.is_queued (System.sched sys) ~core:target.Types.t_core target
      in
      if was_queued then
        Sched.remove (System.sched sys) ~core:target.Types.t_core target;
      ignore
        (System.touch_shared sys ~core Layout.Sched_queues
           ~off:(target.Types.t_prio * 16) ~len:16 ~kind:Tp_hw.Defs.Write ());
      target.Types.t_prio <- max 0 (min (Sched.n_priorities - 1) prio);
      if was_queued then begin
        Sched.enqueue (System.sched sys) ~core:target.Types.t_core target;
        ignore
          (System.touch_shared sys ~core Layout.Sched_queues
             ~off:(target.Types.t_prio * 16) ~len:16 ~kind:Tp_hw.Defs.Write ())
      end;
      ignore
        (System.touch_shared sys ~core Layout.Sched_bitmap ~kind:Tp_hw.Defs.Write ())
  | Yield ->
      fetch_text sys ~core ki Layout.handler_yield;
      ignore
        (System.touch_shared sys ~core Layout.Cur_decision ~kind:Tp_hw.Defs.Write ())
  | Set_timeout { irq; after } ->
      fetch_text sys ~core ki Layout.handler_irq;
      ignore
        (System.touch_shared sys ~core Layout.Irq_tables ~off:(irq * 64) ~len:64
           ~kind:Tp_hw.Defs.Write ());
      Irq.arm_timer (System.irq sys) ~core ~irq
        ~at:(System.now sys ~core + after));
  (* Return to user: back through the stub. *)
  fetch_text sys ~core ki Layout.entry_stub;
  Tp_hw.Machine.add_cycles (System.machine sys) ~core trap_cost

let handle_irq sys ~core ~irq =
  let ki = current_kernel sys ~core in
  Tp_hw.Machine.add_cycles (System.machine sys) ~core trap_cost;
  fetch_text sys ~core ki Layout.handler_irq;
  touch_stack sys ~core ki;
  ignore
    (System.touch_shared sys ~core Layout.Cur_irq ~kind:Tp_hw.Defs.Write ());
  ignore
    (System.touch_shared sys ~core Layout.Irq_tables ~off:(irq * 64) ~len:64
       ~kind:Tp_hw.Defs.Read ());
  (* Acknowledge at the interrupt controller (EOI round-trip), signal
     the user-level driver's notification, and return — several
     microseconds of work on real hardware, and the magnitude of the
     cycle-counter jump the Figure 6 spy detects. *)
  Tp_hw.Machine.add_cycles (System.machine sys) ~core (trap_cost + 8_000)
