(** System-call execution with faithful kernel memory footprints.

    Each syscall traps into the {e current} kernel image and touches:
    the entry/exit stub and the handler's text range (image text), the
    kernel stack, per-handler replicated globals (image data), the
    §4.1 shared regions the real code path would touch, and the frames
    of the dynamic objects it manipulates.  The Figure 3 covert channel
    is exactly these footprints observed through the LLC; cloning moves
    the text/data/stack part into the domain's own colours.

    The three sender syscalls of §5.3.1 are [Signal], [Set_priority]
    and [Poll] (plus idling), so those paths are modelled in the most
    detail. *)

type call =
  | Signal of Types.notification
  | Poll of Types.notification
  | Set_priority of Types.tcb * int
  | Yield
  | Set_timeout of { irq : int; after : int }
      (** program the one-shot timer device owned by the caller's
          domain to fire [after] cycles from now (the Figure 6 Trojan) *)

val execute : System.t -> core:int -> Types.tcb -> call -> unit
(** Run the syscall on behalf of the thread; all costs are charged to
    the core. *)

val handle_irq : System.t -> core:int -> irq:int -> unit
(** Kernel IRQ-handling path for a device interrupt (not the
    preemption timer): entry, IRQ table walk, acknowledge, exit. *)

val trap_cost : int
(** Fixed entry+exit cycles of a trap (mode switch). *)
