(* Hot-path microbenchmarks (bechamel).

   The per-access path — Cache.access_*fast, Tlb.access, Machine.access
   — dominates every experiment's runtime, so this suite pins its cost
   in host ns/op: run it before and after touching lib/hw to see what a
   change does to simulator throughput.  The working set alternates
   between an L1-resident sweep (hit path) and a strided sweep larger
   than the cache (miss/evict path), with counters both off and on (the
   off case must stay cheap: the hot path hoists the enabled check).

   Usage: micro.exe  (no arguments; haswell geometry) *)

open Bechamel
open Toolkit

let p = Tp_hw.Platform.haswell

let make_cache () = Tp_hw.Cache.create ~name:"bench" p.Tp_hw.Platform.l1d

let bench_cache_hit =
  let c = make_cache () in
  let pos = ref 0 in
  (* 16 KiB < 32 KiB L1: steady-state all hits. *)
  Test.make ~name:"cache.access_fast hit"
    (Staged.stage (fun () ->
         pos := (!pos + 64) land 0x3FFF;
         ignore (Tp_hw.Cache.access_fast c ~vaddr:!pos ~paddr:!pos ~write:false)))

let bench_cache_miss =
  let c = make_cache () in
  let pos = ref 0 in
  (* 4 MiB stride-64 sweep >> 32 KiB L1: steady-state all misses. *)
  Test.make ~name:"cache.access_fast miss+evict"
    (Staged.stage (fun () ->
         pos := (!pos + 64) land 0x3FFFFF;
         ignore (Tp_hw.Cache.access_fast c ~vaddr:!pos ~paddr:!pos ~write:true)))

let bench_cache_masked =
  let c = make_cache () in
  let pos = ref 0 in
  Test.make ~name:"cache.access_masked_fast (CAT mask)"
    (Staged.stage (fun () ->
         pos := (!pos + 64) land 0x3FFFFF;
         ignore
           (Tp_hw.Cache.access_masked_fast c ~alloc_ways:0x3 ~vaddr:!pos
              ~paddr:!pos ~write:false)))

let bench_tlb =
  let t = Tp_hw.Tlb.create ~name:"bench" { Tp_hw.Tlb.entries = 64; ways = 4 } in
  let vpn = ref 0 in
  Test.make ~name:"tlb.access"
    (Staged.stage (fun () ->
         vpn := (!vpn + 1) land 0x7F;
         ignore (Tp_hw.Tlb.access t ~asid:1 ~vpn:!vpn ~global:false)))

let bench_machine ~counters =
  let m = Tp_hw.Machine.create p in
  let pos = ref 0 in
  Test.make
    ~name:
      (Printf.sprintf "machine.access hit (counters %s)"
         (if counters then "on" else "off"))
    (Staged.stage (fun () ->
         Tp_obs.Ctl.set_counters counters;
         pos := (!pos + 64) land 0x3FFF;
         ignore
           (Tp_hw.Machine.access m ~core:0 ~asid:1 ~vaddr:!pos ~paddr:!pos
              ~kind:Tp_hw.Defs.Read ())))

let bench_snapshot =
  let m = Tp_hw.Machine.create p in
  Test.make ~name:"machine.snapshot"
    (Staged.stage (fun () -> ignore (Tp_hw.Machine.snapshot m)))

let bench_restore =
  let m = Tp_hw.Machine.create p in
  let snap = Tp_hw.Machine.snapshot m in
  Test.make ~name:"machine.restore"
    (Staged.stage (fun () -> Tp_hw.Machine.restore m snap))

(* Cost of one replayed op, amortised over a 64-access stream: the
   per-op figure the >=5x sweep-throughput floor rests on. *)
let replay_ops = 64

let bench_replay_step =
  let m = Tp_hw.Machine.create p in
  let r = Tp_hw.Replay.create () in
  for i = 0 to replay_ops - 1 do
    Tp_hw.Replay.append_access r ~kind:Tp_hw.Defs.Read
      ~vaddr:(i * 64 land 0x3FFF)
      ~paddr:(i * 64 land 0x3FFF)
      ~root_pa:0 ~leaf_pa:(-1)
  done;
  Tp_hw.Replay.append_idle r;
  Test.make ~name:(Printf.sprintf "replay.step (x%d)" replay_ops)
    (Staged.stage (fun () ->
         ignore
           (Tp_hw.Replay.replay m ~core:0 ~asid:1 ~llc_ways:(lnot 0)
              ~until:max_int r)))

let () =
  let tests =
    [
      bench_cache_hit;
      bench_cache_miss;
      bench_cache_masked;
      bench_tlb;
      bench_machine ~counters:false;
      bench_machine ~counters:true;
      bench_snapshot;
      bench_restore;
      bench_replay_step;
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table =
    Tp_util.Table.create ~title:"Simulator hot-path costs"
      ~headers:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> Printf.sprintf "%.1f" v
            | _ -> "n/a"
          in
          Tp_util.Table.add_row table [ Test.Elt.name elt; ns ])
        (Test.elements test))
    tests;
  Tp_obs.Ctl.set_counters false;
  Tp_util.Table.print table
