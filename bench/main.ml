(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), then runs Bechamel microbenchmarks of the
   library's core operations.

   Usage: main.exe [quick|full] [haswell|sabre|both] [seed]
   Defaults: quick, both, seed 1. *)

open Tp_core

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '#')

let run_platform q ~seed p =
  section
    (Printf.sprintf "Platform: %s (%s)" p.Tp_hw.Platform.name
       (match p.Tp_hw.Platform.arch with
       | Tp_hw.Platform.X86 -> "x86"
       | Tp_hw.Platform.Arm -> "Arm v7"));
  Format.printf "%a@.@." Tp_hw.Platform.pp p;

  section "Table 2: worst-case cache flush costs";
  Report.table2 (Exp_table2.run p);

  section "Figure 3: kernel-image covert channel";
  Report.fig3 (Exp_fig3.run q ~seed p);

  section "Table 3: intra-core timing channels";
  Report.table3 (Exp_table3.run q ~seed:(seed + 10) p);

  section "Figure 4: cross-core LLC side channel (ElGamal)";
  Report.fig4 (Exp_fig4.run q ~seed:(seed + 20) p);

  section "Figure 5 + Table 4: cache-flush latency channel";
  let t4 = Exp_table4.run q ~seed:(seed + 30) p in
  Report.fig5 t4;
  Report.table4 t4;

  section "Figure 6: timer-interrupt channel";
  Report.fig6 (Exp_fig6.run q ~seed:(seed + 40) p);

  section "Table 5: IPC microbenchmark";
  Report.table5 (Exp_table5.run q p);

  section "Table 6: domain-switch cost";
  Report.table6 (Exp_table6.run q p);

  section "Table 7: kernel clone and destruction cost";
  Report.table7 (Exp_table7.run q p);

  section "Figure 7: Splash-2 under cache colouring";
  Report.fig7 (Exp_fig7.run_fig7 q ~seed:(seed + 50) p);

  section "Table 8: time-shared Splash-2 with time protection";
  Report.table8 (Exp_fig7.run_table8 q ~seed:(seed + 60) p);

  section "Beyond the paper: interconnect (bus) covert channel";
  let rng = Tp_util.Rng.create ~seed:(seed + 70) in
  let samples = Quality.samples q / 2 in
  let open_chan =
    Tp_attacks.Bus_chan.run
      (Scenario.boot Scenario.Protected p)
      ~samples ~partitioned:false ~rng
  in
  let closed_chan =
    Tp_attacks.Bus_chan.run
      (Scenario.boot Scenario.Protected p)
      ~samples ~partitioned:true ~rng
  in
  Format.printf
    "concurrent cross-core bus channel, under full time protection: %a@."
    Tp_channel.Leakage.pp_result open_chan;
  Format.printf
    "same, with the hypothetical hardware bandwidth partition:      %a@.@."
    Tp_channel.Leakage.pp_result closed_chan;
  let mba =
    Tp_attacks.Bus_chan.run_mode
      (Scenario.boot Scenario.Protected p)
      ~samples ~mode:(Tp_hw.Interconnect.Mba 0.4) ~rng
  in
  Format.printf
    "with Intel-MBA-style approximate throttling (40%%):          %a@."
    Tp_channel.Leakage.pp_result mba;
  Format.printf
    "(time protection cannot close this channel, and MBA's approximate \
     enforcement does not either [footnote 5] — the paper's argument for \
     a new hardware-software contract, Sec. 6.1)@.";

  section "Beyond the paper: DRAM row-buffer channel (taxonomy Sec. 2.2)";
  let open Tp_kernel in
  let run_dram config ~close =
    let b = Tp_kernel.Boot.boot ~platform:p ~config ~domains:2 () in
    let rng = Tp_util.Rng.create ~seed:(seed + 80) in
    Tp_attacks.Dram_chan.run b ~samples:(Quality.samples q / 2)
      ~close_rows_on_switch:close ~rng
  in
  Format.printf "raw:                                %a@."
    Tp_channel.Leakage.pp_result
    (run_dram Config.raw ~close:false);
  Format.printf "full time protection:               %a@."
    Tp_channel.Leakage.pp_result
    (run_dram (Config.protected_ p) ~close:false);
  Format.printf "+ hypothetical precharge-on-switch: %a@."
    Tp_channel.Leakage.pp_result
    (run_dram
       { (Config.protected_ p) with Config.close_dram_rows = true }
       ~close:true);
  Format.printf
    "(row-buffer state is outside the architected flush set: another \
     instance of the incomplete hardware-software contract)@.";

  section "Beyond the paper: gang scheduling (Sec. 3.1.1)";
  let run_cosched ~cosched =
    let b = Scenario.boot Scenario.Protected p in
    let sender, receiver = Tp_attacks.Cosched_chan.prepare b in
    let spec =
      {
        (Tp_attacks.Harness.default_spec p) with
        Tp_attacks.Harness.samples = Quality.samples q / 3;
        symbols = Tp_attacks.Cosched_chan.symbols;
      }
    in
    let rng = Tp_util.Rng.create ~seed:(seed + 90) in
    let s =
      Tp_attacks.Harness.run_pair_cross_core b ~sender ~receiver ~cosched spec
        ~rng
    in
    Tp_channel.Leakage.test ~rng s
  in
  Format.printf "cross-core bandwidth channel, free-running: %a@."
    Tp_channel.Leakage.pp_result (run_cosched ~cosched:false);
  Format.printf "same, domains gang-scheduled:              %a@."
    Tp_channel.Leakage.pp_result (run_cosched ~cosched:true);
  Format.printf
    "(with gang scheduling no two domains ever execute concurrently, so \
     concurrent-access channels vanish by construction)@.";

  section "Beyond the paper: Intel CAT way-partitioning (Sec. 2.3)";
  let rng = Tp_util.Rng.create ~seed:(seed + 100) in
  (match
     Tp_attacks.Crypto.run (Scenario.boot Scenario.Cat_llc p) ~key_bits:48 ~rng
   with
  | Some t when Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity ->
      Format.printf "LLC attack under CAT: still open (unexpected)@."
  | Some _ | None ->
      Format.printf "cross-core LLC side channel vs ElGamal: closed by CAT@.");
  let l1 =
    let chan = Tp_attacks.Cache_channels.l1d in
    let b = Scenario.boot Scenario.Cat_llc p in
    let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
    let spec =
      {
        (Tp_attacks.Harness.default_spec p) with
        Tp_attacks.Harness.samples = Quality.samples q / 2;
        symbols = chan.Tp_attacks.Cache_channels.symbols;
      }
    in
    Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng
  in
  Format.printf "but the on-core L1-D channel under CAT alone: %a@."
    Tp_channel.Leakage.pp_result l1;
  Format.printf
    "(CAT partitions only the LLC — the paper's case for mandatory \
     kernel-level time protection)@.";

  section "Beyond the paper: Bell-LaPadula padding policy (Sec. 4.3)";
  let mls = Mls.demo ~samples:(Quality.samples q / 2) ~seed:(seed + 110) p in
  Format.printf "High -> Low (forbidden):   %a@." Tp_channel.Leakage.pp_result
    mls.Mls.high_to_low;
  Format.printf "Low  -> High (authorised): %a@." Tp_channel.Leakage.pp_result
    mls.Mls.low_to_high;
  Format.printf
    "(only High's kernel pads: the policy lives entirely in per-image pad \
     attributes)@.";

  section "Beyond the paper: empirical pad calibration (Sec. 4.3)";
  let c = Calibrate.switch_pad p in
  Format.printf
    "worst observed unpadded switch: %d cycles over %d adversarial trials;@."
    c.Calibrate.worst_observed_cycles c.Calibrate.trials;
  Format.printf "calibrated pad: %.1f us (+25%% margin); validates: %b@."
    c.Calibrate.pad_us
    (Calibrate.covers c p ~trials:8);

  section "Observability: kernel counter totals over this platform's run";
  let kernel_sets =
    List.filter_map Tp_obs.Counter.find
      [ "kernel.switch"; "kernel.clone"; "kernel.sched" ]
  in
  Tp_util.Table.print (Tp_obs.Counter.table kernel_sets);
  (* Per-platform window: the next platform starts from zero. *)
  List.iter Tp_obs.Counter.reset kernel_sets

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the library's own operations.           *)

let microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel microbenchmarks (library operation costs, host ns)";
  let p = Tp_hw.Platform.haswell in
  (* Pre-built state reused across iterations. *)
  let machine = Tp_hw.Machine.create p in
  let pos = ref 0 in
  let bench_cache_access =
    Test.make ~name:"machine.access (hit path)"
      (Staged.stage (fun () ->
           pos := (!pos + 64) land 0x7FFF;
           ignore
             (Tp_hw.Machine.access machine ~core:0 ~asid:1 ~vaddr:!pos
                ~paddr:!pos ~kind:Tp_hw.Defs.Read ())))
  in
  let b = Scenario.boot Scenario.Protected p in
  let sys = b.Tp_kernel.Boot.sys in
  let d0 = b.Tp_kernel.Boot.domains.(0) and d1 = b.Tp_kernel.Boot.domains.(1) in
  let t0 = Tp_kernel.Boot.spawn b d0 (fun _ -> ()) in
  let t1 = Tp_kernel.Boot.spawn b d1 (fun _ -> ()) in
  Tp_kernel.Sched.remove (Tp_kernel.System.sched sys) ~core:0 t0;
  Tp_kernel.Sched.remove (Tp_kernel.System.sched sys) ~core:0 t1;
  let flip = ref false in
  let bench_domain_switch =
    Test.make ~name:"domain switch (protected, incl. flushes)"
      (Staged.stage (fun () ->
           flip := not !flip;
           ignore
             (Tp_kernel.Domain_switch.switch sys ~core:0
                ~to_:(if !flip then t1 else t0))))
  in
  let ep = Tp_kernel.Boot.new_endpoint b d0 in
  let ta = Tp_kernel.Boot.spawn b d0 (fun _ -> ()) in
  let tb = Tp_kernel.Boot.spawn b d0 (fun _ -> ()) in
  Tp_kernel.Sched.remove (Tp_kernel.System.sched sys) ~core:0 ta;
  Tp_kernel.Sched.remove (Tp_kernel.System.sched sys) ~core:0 tb;
  let dir = ref false in
  let bench_ipc =
    Test.make ~name:"IPC one-way fastpath"
      (Staged.stage (fun () ->
           dir := not !dir;
           let from, to_ = if !dir then (ta, tb) else (tb, ta) in
           ignore (Tp_kernel.Ipc.one_way sys ~core:0 ~ep ~from ~to_)))
  in
  let rng = Tp_util.Rng.create ~seed:7 in
  let mi_samples =
    {
      Tp_channel.Mi.input = Array.init 512 (fun i -> i land 3);
      output =
        Array.init 512 (fun i ->
            float_of_int (i land 3) +. Tp_util.Rng.float rng 1.0);
    }
  in
  let bench_mi =
    Test.make ~name:"MI estimate (512 samples, 4 symbols)"
      (Staged.stage (fun () -> ignore (Tp_channel.Mi.estimate mi_samples)))
  in
  let kde_xs = Array.init 1000 (fun i -> float_of_int (i mod 97)) in
  let bench_kde =
    Test.make ~name:"KDE (1000 samples, 512-point grid)"
      (Staged.stage (fun () ->
           ignore
             (Tp_channel.Kde.estimate
                { Tp_channel.Kde.lo = 0.0; hi = 100.0; points = 512 }
                kde_xs)))
  in
  let tests =
    [ bench_cache_access; bench_domain_switch; bench_ipc; bench_mi; bench_kde ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table =
    Tp_util.Table.create ~title:"Library operation costs"
      ~headers:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> Printf.sprintf "%.0f" v
            | _ -> "n/a"
          in
          Tp_util.Table.add_row table [ Test.Elt.name elt; ns ])
        (Test.elements test))
    tests;
  Tp_util.Table.print table

let () =
  let arg n default = if Array.length Sys.argv > n then Sys.argv.(n) else default in
  let q =
    match Quality.of_string (arg 1 "quick") with
    | Some q -> q
    | None -> failwith "quality must be quick or full"
  in
  let plats =
    match arg 2 "both" with
    | "haswell" -> [ Tp_hw.Platform.haswell ]
    | "sabre" -> [ Tp_hw.Platform.sabre ]
    | "armv8" -> [ Tp_hw.Platform.armv8 ]
    | "both" -> [ Tp_hw.Platform.haswell; Tp_hw.Platform.sabre ]
    | "all" -> Tp_hw.Platform.all
    | s -> failwith ("unknown platform " ^ s)
  in
  let seed = int_of_string (arg 3 "1") in
  (* Counters are observability-only (never read by the model), so the
     bench enables them unconditionally for its summary sections. *)
  Tp_obs.Ctl.set_counters true;
  Format.printf
    "Time Protection (EuroSys 2019) — full evaluation reproduction@.";
  Format.printf "quality=%s seed=%d@."
    (match q with Quality.Quick -> "quick" | Quality.Full -> "full")
    seed;
  List.iter (run_platform q ~seed) plats;
  microbenchmarks ();
  Format.printf "@.Done.@."
